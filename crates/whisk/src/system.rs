//! The FaaS platform: controller, invokers, and the HPC-Whisk dynamic
//! worker protocol, as one event-driven state machine.
//!
//! Data path of one invocation (§II):
//! client → controller (routing by function hash over the *dynamic*
//! healthy set) → per-invoker Kafka topic → invoker poll loop → container
//! (warm, or cold-started) → execution → result → client.
//!
//! The HPC-Whisk extensions (§III-C) implemented here:
//!
//! * invokers register/de-register dynamically; the controller keeps a
//!   live list of routable invokers and answers **503** when it is empty;
//! * on SIGTERM the invoker stops pulling, the controller *moves* its
//!   unpulled topic messages to the global **fast lane**, the invoker
//!   flushes its internal buffer there too, and (for interruptible
//!   functions) aborts running executions and re-routes them;
//! * every invoker pulls the fast lane **before** its own topic;
//! * a silently-dead invoker keeps receiving requests until its missed
//!   health pings are noticed (`health_timeout`); in
//!   [`DynamicsMode::HpcWhisk`] the orphaned topic is then recovered to
//!   the fast lane, in [`DynamicsMode::Baseline`] it is dropped and the
//!   requests time out — the stock OpenWhisk failure the paper fixes.

use crate::action::FunctionSpec;
use crate::activation::{ActState, ActivationRecord, InvokeResult, Outcome};
use crate::config::{DynamicsMode, WhiskConfig};
use crate::container::Acquire;
use crate::events::{WhiskEvent, WhiskNote};
use crate::ids::{stable_hash, ActivationId, FunctionId, InvokerId};
use crate::invoker::{Invoker, InvokerState};
use metrics::StepSeries;
use mq::{Broker, TopicId};
use simcore::{Outbox, SimRng, SimTime};
use std::collections::{HashMap, VecDeque};

/// Worker-count series (the OpenWhisk-level perspective of Tables
/// II/III: healthy vs irresponsive workers over time).
#[derive(Debug, Clone)]
pub struct WhiskSeries {
    /// Healthy (serving) invokers.
    pub healthy: StepSeries,
    /// Irresponsive invokers: draining or dead-but-unnoticed.
    pub irresp: StepSeries,
}

/// Aggregate platform counters.
#[derive(Debug, Clone, Default)]
pub struct WhiskCounters {
    /// Invocations submitted by clients.
    pub submitted: u64,
    /// Rejected with 503 (no healthy invoker).
    pub rejected_503: u64,
    /// Answered successfully.
    pub success: u64,
    /// Failed during execution.
    pub failed: u64,
    /// Timed out at the controller deadline.
    pub timeout: u64,
    /// Requests re-routed through the fast lane (buffer flush +
    /// interrupted executions).
    pub refired: u64,
    /// Unpulled messages moved topic → fast lane by the controller.
    pub moved_to_fastlane: u64,
    /// Warm container hits.
    pub warm_starts: u64,
    /// Cold starts.
    pub cold_starts: u64,
    /// Invokers that de-registered cleanly.
    pub drains_clean: u64,
    /// Invokers that died without de-registering.
    pub hard_deaths: u64,
    /// Orphaned messages recovered after a noticed death (HpcWhisk mode).
    pub recovered_after_death: u64,
    /// Orphaned messages dropped after a noticed death (Baseline mode).
    pub dropped_after_death: u64,
}

/// The FaaS platform state machine.
pub struct WhiskSys {
    cfg: WhiskConfig,
    broker: Broker<ActivationId>,
    fast_lane: TopicId,
    functions: Vec<FunctionSpec>,
    records: Vec<ActivationRecord>,
    invokers: HashMap<InvokerId, Invoker>,
    routable: Vec<InvokerId>,
    deadline_queue: VecDeque<(SimTime, ActivationId)>,
    rng: SimRng,
    series: WhiskSeries,
    counters: WhiskCounters,
    n_healthy: i64,
    n_irresp: i64,
    speed_factor: f64,
}

impl WhiskSys {
    /// A fresh platform with no functions or invokers.
    pub fn new(cfg: WhiskConfig, seed: u64) -> Self {
        let mut broker = Broker::new();
        let fast_lane = broker.create_topic("fast-lane");
        WhiskSys {
            cfg,
            broker,
            fast_lane,
            functions: Vec::new(),
            records: Vec::new(),
            invokers: HashMap::new(),
            routable: Vec::new(),
            deadline_queue: VecDeque::new(),
            rng: SimRng::seed_from_u64(seed ^ 0x7768_6973_6b00),
            series: WhiskSeries {
                healthy: StepSeries::new(SimTime::ZERO, 0.0),
                irresp: StepSeries::new(SimTime::ZERO, 0.0),
            },
            counters: WhiskCounters::default(),
            n_healthy: 0,
            n_irresp: 0,
            speed_factor: 1.0,
        }
    }

    /// Set the compute speed factor for `Busy` functions (1.0 = the
    /// reference HPC node; >1 = slower platform).
    pub fn with_speed_factor(mut self, f: f64) -> Self {
        assert!(f > 0.0);
        self.speed_factor = f;
        self
    }

    /// Schedule the controller's periodic work.
    pub fn bootstrap(&mut self, now: SimTime, out: &mut Outbox<WhiskEvent>) {
        out.at(now + self.cfg.timeout_scan_every, WhiskEvent::TimeoutScan);
    }

    /// Deploy a function.
    pub fn register_function(&mut self, spec: FunctionSpec) -> FunctionId {
        let id = FunctionId(self.functions.len() as u32);
        self.functions.push(spec);
        id
    }

    /// Number of deployed functions.
    pub fn n_functions(&self) -> usize {
        self.functions.len()
    }

    /// Healthy invoker count.
    pub fn n_healthy(&self) -> usize {
        self.n_healthy as usize
    }

    /// Counters.
    pub fn counters(&self) -> &WhiskCounters {
        &self.counters
    }

    /// Worker-count series.
    pub fn series(&self) -> &WhiskSeries {
        &self.series
    }

    /// Controller record of an activation (tests/diagnostics).
    pub fn record(&self, act: ActivationId) -> &ActivationRecord {
        &self.records[act.0 as usize]
    }

    /// Depth of the fast lane (diagnostics).
    pub fn fast_lane_depth(&self) -> usize {
        self.broker.depth(self.fast_lane)
    }

    // ------------------------------------------------------------------
    // Client API
    // ------------------------------------------------------------------

    /// Submit an invocation at `now` (client send time).
    pub fn invoke(
        &mut self,
        now: SimTime,
        f: FunctionId,
        out: &mut Outbox<WhiskEvent>,
        notes: &mut Vec<WhiskNote>,
    ) -> InvokeResult {
        assert!((f.0 as usize) < self.functions.len(), "unknown function");
        self.counters.submitted += 1;
        let Some(inv) = self.route(f) else {
            self.counters.rejected_503 += 1;
            notes.push(WhiskNote::Rejected503 {
                function: f,
                at: now,
            });
            return InvokeResult::Rejected503;
        };
        let act = ActivationId(self.records.len() as u64);
        let deadline = now + self.cfg.deadline;
        self.records.push(ActivationRecord {
            function: f,
            submitted: now,
            deadline,
            state: ActState::InFlight,
            assigned: Some(inv),
            attempts: 1,
        });
        self.deadline_queue.push_back((deadline, act));
        if let Some(i) = self.invokers.get_mut(&inv) {
            i.ctrl_inflight += 1;
        }
        let delay = self.cfg.jitter(self.cfg.ctrl_overhead, &mut self.rng)
            + self.cfg.jitter(self.cfg.kafka_delay, &mut self.rng);
        out.after(delay, WhiskEvent::Enqueue { act, inv });
        InvokeResult::Accepted(act)
    }

    /// OpenWhisk-style home-invoker routing: the function's hash picks a
    /// home position in the (sorted) routable list; linear probing finds
    /// a not-overloaded invoker, falling back to the home invoker.
    fn route(&self, f: FunctionId) -> Option<InvokerId> {
        if self.routable.is_empty() {
            return None;
        }
        let n = self.routable.len();
        let home = (stable_hash(f.0 as u64 + 1) % n as u64) as usize;
        for i in 0..n {
            let cand = self.routable[(home + i) % n];
            let inv = &self.invokers[&cand];
            if inv.ctrl_inflight < inv.pool.free_slots() + inv.pool.busy() {
                return Some(cand);
            }
        }
        Some(self.routable[home])
    }

    // ------------------------------------------------------------------
    // Invoker lifecycle API (driven by the pilot-job glue)
    // ------------------------------------------------------------------

    /// A warmed-up pilot registers its invoker; it becomes routable
    /// immediately.
    pub fn start_invoker(
        &mut self,
        now: SimTime,
        key: u64,
        out: &mut Outbox<WhiskEvent>,
        notes: &mut Vec<WhiskNote>,
    ) -> InvokerId {
        let id = InvokerId(key);
        assert!(
            !self.invokers.contains_key(&id),
            "invoker {id} already registered"
        );
        let topic = self.broker.create_topic(&format!("invoker-{key}"));
        self.invokers.insert(
            id,
            Invoker::new(topic, self.cfg.container_slots, self.cfg.cold_concurrency),
        );
        let pos = self.routable.partition_point(|x| *x < id);
        self.routable.insert(pos, id);
        self.n_healthy += 1;
        self.push_series(now);
        notes.push(WhiskNote::InvokerUp(id));
        let d = self.cfg.jitter(self.cfg.poll_interval, &mut self.rng);
        out.after(d, WhiskEvent::InvokerPoll(id));
        id
    }

    /// SIGTERM: begin the drain protocol (§III-C).
    pub fn sigterm_invoker(
        &mut self,
        now: SimTime,
        id: InvokerId,
        out: &mut Outbox<WhiskEvent>,
        notes: &mut Vec<WhiskNote>,
    ) {
        if self.cfg.mode == DynamicsMode::Baseline {
            // Stock OpenWhisk has no SIGTERM handling (§II): the invoker
            // keeps serving obliviously until SIGKILL; its queue is lost.
            return;
        }
        let Some(inv) = self.invokers.get_mut(&id) else {
            return;
        };
        if inv.state != InvokerState::Healthy {
            return;
        }
        inv.state = InvokerState::Draining;
        self.routable.retain(|x| *x != id);
        self.n_healthy -= 1;
        self.n_irresp += 1;
        self.push_series(now);
        notes.push(WhiskNote::InvokerDraining(id));

        // Controller half: move unpulled topic messages to the fast lane.
        let inv = self.invokers.get_mut(&id).expect("just checked");
        let topic = inv.topic;
        let buffered: Vec<ActivationId> = inv.buffer.drain(..).collect();
        let running: Vec<ActivationId> = inv.running.iter().copied().collect();
        let moved = self.broker.move_all(topic, self.fast_lane, now);
        self.counters.moved_to_fastlane += moved as u64;

        // Invoker half: flush the internal buffer.
        for act in buffered {
            if self.records[act.0 as usize].in_flight() {
                let submitted = self.records[act.0 as usize].submitted;
                self.records[act.0 as usize].attempts += 1;
                self.broker.produce(self.fast_lane, submitted, act);
                self.counters.refired += 1;
            }
        }
        // Interrupt running executions of interruptible functions and
        // re-route them too.
        for act in running {
            let f = self.records[act.0 as usize].function;
            if self.functions[f.0 as usize].interruptible {
                let inv = self.invokers.get_mut(&id).expect("draining");
                inv.running.remove(&act);
                inv.pool.abandon();
                if self.records[act.0 as usize].in_flight() {
                    let submitted = self.records[act.0 as usize].submitted;
                    self.records[act.0 as usize].attempts += 1;
                    self.broker.produce(self.fast_lane, submitted, act);
                    self.counters.refired += 1;
                }
            }
        }
        let d = self.cfg.jitter(self.cfg.drain_flush, &mut self.rng);
        out.after(d, WhiskEvent::DrainComplete(id));
    }

    /// Hard death: SIGKILL or node failure, no drain. In-buffer and
    /// running work is lost; the controller keeps routing to the corpse
    /// until the health timeout.
    pub fn kill_invoker(
        &mut self,
        now: SimTime,
        id: InvokerId,
        out: &mut Outbox<WhiskEvent>,
        notes: &mut Vec<WhiskNote>,
    ) {
        let Some(inv) = self.invokers.get_mut(&id) else {
            return;
        };
        match inv.state {
            InvokerState::Healthy => {
                inv.state = InvokerState::DeadUnnoticed;
                inv.buffer.clear();
                inv.running.clear();
                self.counters.hard_deaths += 1;
                self.n_healthy -= 1;
                self.n_irresp += 1;
                self.push_series(now);
                out.after(self.cfg.health_timeout, WhiskEvent::DeathNoticed(id));
            }
            InvokerState::Draining => {
                // The controller already stopped routing; tear down now.
                self.counters.hard_deaths += 1;
                self.remove_invoker(now, id, false, notes);
            }
            InvokerState::DeadUnnoticed => {}
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Main event dispatch.
    pub fn handle(
        &mut self,
        now: SimTime,
        ev: WhiskEvent,
        out: &mut Outbox<WhiskEvent>,
        notes: &mut Vec<WhiskNote>,
    ) {
        match ev {
            WhiskEvent::Enqueue { act, inv } => self.on_enqueue(now, act, inv),
            WhiskEvent::InvokerPoll(id) => self.on_poll(now, id, out, notes),
            WhiskEvent::ColdStartDone { inv, act } => self.on_cold_done(now, inv, act, out),
            WhiskEvent::ExecDone { inv, act } => self.on_exec_done(now, inv, act, out, notes),
            WhiskEvent::DrainComplete(id) => {
                if self
                    .invokers
                    .get(&id)
                    .is_some_and(|i| i.state == InvokerState::Draining)
                {
                    self.counters.drains_clean += 1;
                    self.remove_invoker(now, id, true, notes);
                }
            }
            WhiskEvent::DeathNoticed(id) => {
                if self
                    .invokers
                    .get(&id)
                    .is_some_and(|i| i.state == InvokerState::DeadUnnoticed)
                {
                    self.routable.retain(|x| *x != id);
                    self.remove_invoker(now, id, false, notes);
                }
            }
            WhiskEvent::TimeoutScan => {
                while let Some((deadline, act)) = self.deadline_queue.front().copied() {
                    if deadline > now {
                        break;
                    }
                    self.deadline_queue.pop_front();
                    if self.records[act.0 as usize].in_flight() {
                        self.answer(now, act, Outcome::Timeout, notes);
                    }
                }
                out.after(self.cfg.timeout_scan_every, WhiskEvent::TimeoutScan);
            }
        }
    }

    fn on_enqueue(&mut self, _now: SimTime, act: ActivationId, inv: InvokerId) {
        if !self.records[act.0 as usize].in_flight() {
            return;
        }
        let submitted = self.records[act.0 as usize].submitted;
        match self.invokers.get(&inv) {
            Some(i) => {
                // Delivered even to a dead-unnoticed invoker's topic:
                // the controller does not know better yet.
                self.broker.produce(i.topic, submitted, act);
            }
            None => {
                // The chosen invoker de-registered in flight; the fast
                // lane guarantees any surviving invoker picks it up.
                self.broker.produce(self.fast_lane, submitted, act);
            }
        }
    }

    fn on_poll(
        &mut self,
        now: SimTime,
        id: InvokerId,
        out: &mut Outbox<WhiskEvent>,
        notes: &mut Vec<WhiskNote>,
    ) {
        let Some(inv) = self.invokers.get_mut(&id) else {
            return; // gone — the poll loop dies with it
        };
        if inv.state != InvokerState::Healthy {
            return;
        }
        let room = self.cfg.buffer_max.saturating_sub(inv.buffer.len());
        if room > 0 {
            let topic = inv.topic;
            // Fast lane first (§III-C), own topic with the remainder.
            let fast = self.broker.fetch(self.fast_lane, room);
            let n_fast = fast.len();
            let own = self.broker.fetch(topic, room - n_fast);
            let inv = self.invokers.get_mut(&id).expect("still here");
            for m in fast {
                inv.buffer.push_back(m.payload);
                inv.ctrl_inflight += 1; // fast-lane work was unassigned
                self.records[m.payload.0 as usize].assigned = Some(id);
            }
            for m in own {
                inv.buffer.push_back(m.payload);
            }
        }
        self.dispatch(now, id, out, notes);
        let d = self.cfg.jitter(self.cfg.poll_interval, &mut self.rng);
        out.after(d, WhiskEvent::InvokerPoll(id));
    }

    /// Start buffered activations on containers until capacity runs out.
    fn dispatch(
        &mut self,
        now: SimTime,
        id: InvokerId,
        out: &mut Outbox<WhiskEvent>,
        notes: &mut Vec<WhiskNote>,
    ) {
        loop {
            let Some(inv) = self.invokers.get_mut(&id) else {
                return;
            };
            if !inv.alive() {
                return;
            }
            let Some(&act) = inv.buffer.front() else {
                return;
            };
            if !self.records[act.0 as usize].in_flight() {
                // Timed out while queued; drop silently.
                inv.buffer.pop_front();
                inv.ctrl_inflight = inv.ctrl_inflight.saturating_sub(1);
                continue;
            }
            let f = self.records[act.0 as usize].function;
            match inv.pool.acquire(f, now) {
                Acquire::Warm => {
                    inv.buffer.pop_front();
                    inv.running.insert(act);
                    self.counters.warm_starts += 1;
                    let service = self.functions[f.0 as usize]
                        .exec
                        .service_time(self.speed_factor);
                    let d = self.cfg.jitter(self.cfg.dispatch, &mut self.rng) + service;
                    out.after(d, WhiskEvent::ExecDone { inv: id, act });
                }
                Acquire::Cold => {
                    inv.buffer.pop_front();
                    inv.running.insert(act);
                    self.counters.cold_starts += 1;
                    let d = self.cfg.jitter(self.cfg.cold_start, &mut self.rng);
                    out.after(d, WhiskEvent::ColdStartDone { inv: id, act });
                }
                Acquire::ColdBlocked => {
                    // Containers are booting as fast as the node allows.
                    // Under moderate pressure the request just waits; a
                    // badly backed-up buffer means the node is thrashing
                    // (the paper's container-limit failure window, §V-C)
                    // and container creation starts failing.
                    if inv.buffer.len() >= self.cfg.buffer_max / 2 {
                        inv.buffer.pop_front();
                        inv.ctrl_inflight = inv.ctrl_inflight.saturating_sub(1);
                        self.answer(now, act, Outcome::Failed, notes);
                    } else {
                        return;
                    }
                }
                Acquire::NoCapacity => return,
            }
        }
    }

    fn on_cold_done(
        &mut self,
        _now: SimTime,
        id: InvokerId,
        act: ActivationId,
        out: &mut Outbox<WhiskEvent>,
    ) {
        let Some(inv) = self.invokers.get_mut(&id) else {
            return;
        };
        if !inv.alive() {
            return;
        }
        inv.pool.cold_done();
        if !inv.running.contains(&act) {
            return; // aborted during drain
        }
        let f = self.records[act.0 as usize].function;
        let service = self.functions[f.0 as usize]
            .exec
            .service_time(self.speed_factor);
        let d = self.cfg.jitter(self.cfg.dispatch, &mut self.rng) + service;
        out.after(d, WhiskEvent::ExecDone { inv: id, act });
    }

    fn on_exec_done(
        &mut self,
        now: SimTime,
        id: InvokerId,
        act: ActivationId,
        out: &mut Outbox<WhiskEvent>,
        notes: &mut Vec<WhiskNote>,
    ) {
        let Some(inv) = self.invokers.get_mut(&id) else {
            return;
        };
        if !inv.running.remove(&act) {
            return; // re-routed or invoker died meanwhile
        }
        let f = self.records[act.0 as usize].function;
        inv.pool.release(f, now);
        inv.ctrl_inflight = inv.ctrl_inflight.saturating_sub(1);
        if self.records[act.0 as usize].in_flight() {
            self.answer(now, act, Outcome::Success, notes);
        }
        // A slot freed: start the next buffered activation immediately.
        self.dispatch(now, id, out, notes);
    }

    /// Mark an activation answered and emit its note.
    fn answer(
        &mut self,
        now: SimTime,
        act: ActivationId,
        outcome: Outcome,
        notes: &mut Vec<WhiskNote>,
    ) {
        let rtt = self.cfg.jitter(self.cfg.client_rtt, &mut self.rng);
        let result_path = match outcome {
            Outcome::Success => self.cfg.jitter(self.cfg.result_path, &mut self.rng),
            _ => simcore::SimDuration::ZERO,
        };
        let r = &mut self.records[act.0 as usize];
        debug_assert!(r.in_flight());
        r.state = ActState::Answered(outcome);
        match outcome {
            Outcome::Success => self.counters.success += 1,
            Outcome::Failed => self.counters.failed += 1,
            Outcome::Timeout => self.counters.timeout += 1,
        }
        notes.push(WhiskNote::ActivationDone {
            act,
            function: r.function,
            outcome,
            submitted: r.submitted,
            answered: now + result_path + rtt,
            attempts: r.attempts,
        });
    }

    fn remove_invoker(
        &mut self,
        now: SimTime,
        id: InvokerId,
        clean: bool,
        notes: &mut Vec<WhiskNote>,
    ) {
        let inv = self.invokers.remove(&id).expect("removing unknown invoker");
        // Catch stragglers delivered after the drain's move_all.
        let leftovers = self.broker.depth(inv.topic);
        if leftovers > 0 {
            match self.cfg.mode {
                DynamicsMode::HpcWhisk => {
                    let n = self.broker.move_all(inv.topic, self.fast_lane, now);
                    if clean {
                        self.counters.moved_to_fastlane += n as u64;
                    } else {
                        self.counters.recovered_after_death += n as u64;
                    }
                }
                DynamicsMode::Baseline => {
                    let orphans = self.broker.delete_topic(inv.topic);
                    self.counters.dropped_after_death += orphans.len() as u64;
                }
            }
        }
        if self.broker.is_live(inv.topic) {
            self.broker.delete_topic(inv.topic);
        }
        self.n_irresp -= 1;
        self.push_series(now);
        notes.push(WhiskNote::InvokerGone { inv: id, clean });
    }

    fn push_series(&mut self, now: SimTime) {
        self.series.healthy.set(now, self.n_healthy as f64);
        self.series.irresp.set(now, self.n_irresp as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::FunctionSpec;
    use simcore::SimDuration;

    fn sys() -> WhiskSys {
        WhiskSys::new(WhiskConfig::default(), 1)
    }

    #[test]
    fn function_registration_assigns_sequential_ids() {
        let mut s = sys();
        let a = s.register_function(FunctionSpec::sleep("a", SimDuration::from_millis(1)));
        let b = s.register_function(FunctionSpec::sleep("b", SimDuration::from_millis(1)));
        assert_eq!(a, FunctionId(0));
        assert_eq!(b, FunctionId(1));
        assert_eq!(s.n_functions(), 2);
    }

    #[test]
    fn routing_is_stable_for_a_fixed_healthy_set() {
        let mut s = sys();
        let f = s.register_function(FunctionSpec::sleep("f", SimDuration::from_millis(1)));
        let mut out = Outbox::new(SimTime::ZERO);
        let mut notes = Vec::new();
        for k in 0..5 {
            s.start_invoker(SimTime::ZERO, k, &mut out, &mut notes);
        }
        let first = s.route(f).unwrap();
        for _ in 0..20 {
            assert_eq!(s.route(f), Some(first), "same home while set unchanged");
        }
    }

    #[test]
    fn routing_spreads_distinct_functions() {
        let mut s = sys();
        let mut out = Outbox::new(SimTime::ZERO);
        let mut notes = Vec::new();
        for k in 0..8 {
            s.start_invoker(SimTime::ZERO, k, &mut out, &mut notes);
        }
        let mut homes = std::collections::HashSet::new();
        for i in 0..64 {
            let f = s.register_function(FunctionSpec::sleep(
                &format!("f{i}"),
                SimDuration::from_millis(1),
            ));
            homes.insert(s.route(f).unwrap());
        }
        assert!(
            homes.len() >= 5,
            "64 functions spread over 8 invokers: {homes:?}"
        );
    }

    #[test]
    fn sigterm_unknown_or_double_is_harmless() {
        let mut s = sys();
        let mut out = Outbox::new(SimTime::ZERO);
        let mut notes = Vec::new();
        s.sigterm_invoker(SimTime::ZERO, InvokerId(9), &mut out, &mut notes);
        assert!(notes.is_empty());
        s.start_invoker(SimTime::ZERO, 1, &mut out, &mut notes);
        notes.clear();
        s.sigterm_invoker(SimTime::from_secs(1), InvokerId(1), &mut out, &mut notes);
        assert_eq!(notes.len(), 1);
        notes.clear();
        // Second SIGTERM: no double drain.
        s.sigterm_invoker(SimTime::from_secs(2), InvokerId(1), &mut out, &mut notes);
        assert!(notes.is_empty());
    }

    #[test]
    #[should_panic]
    fn duplicate_invoker_key_rejected() {
        let mut s = sys();
        let mut out = Outbox::new(SimTime::ZERO);
        let mut notes = Vec::new();
        s.start_invoker(SimTime::ZERO, 1, &mut out, &mut notes);
        s.start_invoker(SimTime::ZERO, 1, &mut out, &mut notes);
    }

    #[test]
    fn kill_while_draining_tears_down_immediately() {
        let mut s = sys();
        let mut out = Outbox::new(SimTime::ZERO);
        let mut notes = Vec::new();
        s.start_invoker(SimTime::ZERO, 1, &mut out, &mut notes);
        s.sigterm_invoker(SimTime::from_secs(1), InvokerId(1), &mut out, &mut notes);
        notes.clear();
        s.kill_invoker(SimTime::from_secs(2), InvokerId(1), &mut out, &mut notes);
        assert!(matches!(
            notes.as_slice(),
            [WhiskNote::InvokerGone { clean: false, .. }]
        ));
        assert_eq!(s.n_healthy(), 0);
        assert_eq!(s.counters().hard_deaths, 1);
    }
}
