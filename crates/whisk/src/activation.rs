//! Activation (invocation) records and outcomes.

use crate::ids::{FunctionId, InvokerId};
use simcore::SimTime;

/// Client-visible outcome of one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Executed and answered.
    Success,
    /// Failed during execution (container creation refused / crashed).
    Failed,
    /// Never answered before the controller deadline.
    Timeout,
}

/// Result of submitting an invocation to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeResult {
    /// Accepted and queued.
    Accepted(crate::ids::ActivationId),
    /// 503 Service Unavailable: no healthy invoker registered (§III-E).
    Rejected503,
}

/// Controller-side lifecycle of an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActState {
    /// Queued or executing somewhere.
    InFlight,
    /// Answered (successfully or not); late results are ignored.
    Answered(Outcome),
}

/// The controller's record of one activation.
#[derive(Debug, Clone)]
pub struct ActivationRecord {
    /// The function being invoked.
    pub function: FunctionId,
    /// Client submission time.
    pub submitted: SimTime,
    /// Timeout deadline.
    pub deadline: SimTime,
    /// Lifecycle state.
    pub state: ActState,
    /// Which invoker's topic currently holds / executed it.
    pub assigned: Option<InvokerId>,
    /// Delivery attempts (> 1 after fast-lane re-routing).
    pub attempts: u32,
}

impl ActivationRecord {
    /// True iff the client is still waiting.
    pub fn in_flight(&self) -> bool {
        self.state == ActState::InFlight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_transitions() {
        let mut r = ActivationRecord {
            function: FunctionId(0),
            submitted: SimTime::ZERO,
            deadline: SimTime::from_secs(60),
            state: ActState::InFlight,
            assigned: None,
            attempts: 1,
        };
        assert!(r.in_flight());
        r.state = ActState::Answered(Outcome::Success);
        assert!(!r.in_flight());
    }
}
