//! Function (action) specifications.

use simcore::SimDuration;

/// What executing the function costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecModel {
    /// Sleeps for the given duration (the paper's responsiveness
    /// experiment uses 10 ms sleep functions, §V-C). Occupies a
    /// container slot but no meaningful CPU.
    Sleep(SimDuration),
    /// Compute-bound work measured in seconds on a reference node
    /// (the SeBS kernels, §V-D); a platform's speed factor scales it.
    Busy {
        /// Seconds of single-core work on the reference platform.
        reference_secs: f64,
    },
}

impl ExecModel {
    /// Service time on a platform with the given speed factor
    /// (1.0 = reference node; >1 = slower).
    pub fn service_time(&self, speed_factor: f64) -> SimDuration {
        match self {
            ExecModel::Sleep(d) => *d,
            ExecModel::Busy { reference_secs } => {
                SimDuration::from_secs_f64(reference_secs * speed_factor)
            }
        }
    }
}

/// A deployed function.
#[derive(Debug, Clone)]
pub struct FunctionSpec {
    /// Human-readable name (hash routing uses the id, not the name).
    pub name: String,
    /// Execution cost model.
    pub exec: ExecModel,
    /// Whether HPC-Whisk may interrupt a running execution during drain
    /// and re-route it through the fast lane (§III-C: clients opt out
    /// when a function non-atomically mutates external state).
    pub interruptible: bool,
}

impl FunctionSpec {
    /// A sleep function, as used by the responsiveness experiment.
    pub fn sleep(name: &str, d: SimDuration) -> Self {
        FunctionSpec {
            name: name.to_string(),
            exec: ExecModel::Sleep(d),
            interruptible: true,
        }
    }

    /// A compute-bound function.
    pub fn busy(name: &str, reference_secs: f64) -> Self {
        FunctionSpec {
            name: name.to_string(),
            exec: ExecModel::Busy { reference_secs },
            interruptible: true,
        }
    }

    /// Mark the function non-interruptible.
    pub fn non_interruptible(mut self) -> Self {
        self.interruptible = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_service_time_ignores_platform() {
        let e = ExecModel::Sleep(SimDuration::from_millis(10));
        assert_eq!(e.service_time(1.0), SimDuration::from_millis(10));
        assert_eq!(e.service_time(2.0), SimDuration::from_millis(10));
    }

    #[test]
    fn busy_service_time_scales() {
        let e = ExecModel::Busy {
            reference_secs: 2.0,
        };
        assert_eq!(e.service_time(1.0), SimDuration::from_secs(2));
        assert_eq!(e.service_time(1.15), SimDuration::from_millis(2_300));
    }

    #[test]
    fn builders() {
        let f = FunctionSpec::sleep("s", SimDuration::from_millis(10));
        assert!(f.interruptible);
        let g = FunctionSpec::busy("b", 1.0).non_interruptible();
        assert!(!g.interruptible);
    }
}
