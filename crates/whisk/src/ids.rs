//! Identifier newtypes for the FaaS platform.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An OpenWhisk invoker (worker). In HPC-Whisk each invoker lives inside
/// one pilot job; callers key invokers by the pilot's job id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InvokerId(pub u64);

/// A deployed function (OpenWhisk "action").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub u32);

/// One function invocation (OpenWhisk "activation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActivationId(pub u64);

impl fmt::Display for InvokerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inv{}", self.0)
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl fmt::Display for ActivationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "act{}", self.0)
    }
}

/// A deterministic integer hash (Fibonacci hashing), used for
/// home-invoker routing so that "the target invoker is determined based
/// on the hashed name of the function" (paper §II).
pub fn stable_hash(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(InvokerId(1).to_string(), "inv1");
        assert_eq!(FunctionId(2).to_string(), "fn2");
        assert_eq!(ActivationId(3).to_string(), "act3");
    }

    #[test]
    fn stable_hash_is_deterministic_and_spreading() {
        assert_eq!(stable_hash(7), stable_hash(7));
        // Consecutive inputs land far apart.
        let a = stable_hash(1) % 97;
        let b = stable_hash(2) % 97;
        assert_ne!(a, b);
    }
}
