//! FaaS platform configuration and the latency model.

use simcore::{SimDuration, SimRng};

/// Whether the HPC-Whisk dynamic-worker extensions are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicsMode {
    /// The paper's system: SIGTERM-driven drain, fast-lane re-routing,
    /// recovery of a silently-dead invoker's queue once its death is
    /// noticed.
    HpcWhisk,
    /// Stock OpenWhisk behaviour: a departing worker's queued requests
    /// are never re-routed and simply time out (§II: "any unexpected
    /// event ... may result in no answers to some of the calls").
    Baseline,
}

/// Tunables of the simulated OpenWhisk deployment.
///
/// Latency constants are calibrated so a warm 10 ms sleep function has a
/// client-observed median response around the paper's 865 ms (§V-C);
/// every one gets ±15% multiplicative jitter at sampling time.
#[derive(Debug, Clone)]
pub struct WhiskConfig {
    /// HPC-Whisk extensions on/off.
    pub mode: DynamicsMode,
    /// Client ↔ controller round trip (Gatling ran off-cluster).
    pub client_rtt: SimDuration,
    /// Controller request handling overhead.
    pub ctrl_overhead: SimDuration,
    /// Kafka produce → visible-to-consumer delay.
    pub kafka_delay: SimDuration,
    /// Invoker topic poll period.
    pub poll_interval: SimDuration,
    /// Container dispatch overhead per invocation (Singularity exec).
    pub dispatch: SimDuration,
    /// Cold start: creating + booting a function container (§II: usually
    /// less than 500 ms).
    pub cold_start: SimDuration,
    /// Result propagation back to the controller.
    pub result_path: SimDuration,
    /// Container slots per invoker (max concurrently running container
    /// processes — the limit the paper's failure window hit, §V-C).
    pub container_slots: usize,
    /// Max concurrent container *creations*; exceeding it fails the
    /// activation ("failed during execution").
    pub cold_concurrency: usize,
    /// Invoker-side buffer of pulled-but-unstarted requests.
    pub buffer_max: usize,
    /// Controller-side activation deadline; unanswered activations are
    /// reported as timeouts.
    pub deadline: SimDuration,
    /// How long until the controller notices a silently-dead invoker
    /// (missed health pings).
    pub health_timeout: SimDuration,
    /// Time a draining invoker needs to flush its buffer and
    /// de-register ("a few seconds", §III-C).
    pub drain_flush: SimDuration,
    /// Cadence of the controller's timeout scan.
    pub timeout_scan_every: SimDuration,
}

impl Default for WhiskConfig {
    fn default() -> Self {
        WhiskConfig {
            mode: DynamicsMode::HpcWhisk,
            client_rtt: SimDuration::from_millis(280),
            ctrl_overhead: SimDuration::from_millis(40),
            kafka_delay: SimDuration::from_millis(25),
            poll_interval: SimDuration::from_millis(200),
            dispatch: SimDuration::from_millis(340),
            cold_start: SimDuration::from_millis(450),
            result_path: SimDuration::from_millis(90),
            container_slots: 16,
            cold_concurrency: 4,
            buffer_max: 128,
            deadline: SimDuration::from_secs(60),
            health_timeout: SimDuration::from_secs(10),
            drain_flush: SimDuration::from_millis(1_500),
            timeout_scan_every: SimDuration::from_secs(1),
        }
    }
}

impl WhiskConfig {
    /// Sample a latency constant with ±15% multiplicative jitter.
    pub fn jitter(&self, base: SimDuration, rng: &mut SimRng) -> SimDuration {
        let f = rng.range_f64(0.85, 1.15);
        SimDuration::from_secs_f64(base.as_secs_f64() * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sums_to_target_median() {
        // Warm path: ctrl + kafka + E[poll wait] + dispatch + exec +
        // result + client rtt ≈ 0.88 s — the paper's 865 ms ballpark.
        let c = WhiskConfig::default();
        let warm_ms = c.ctrl_overhead.as_millis()
            + c.kafka_delay.as_millis()
            + c.poll_interval.as_millis() / 2
            + c.dispatch.as_millis()
            + 10
            + c.result_path.as_millis()
            + c.client_rtt.as_millis();
        assert!(
            (800..=1000).contains(&warm_ms),
            "warm path sums to {warm_ms} ms"
        );
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let c = WhiskConfig::default();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = c.jitter(SimDuration::from_millis(100), &mut rng);
            assert!(d.as_millis() >= 84 && d.as_millis() <= 116, "{d}");
        }
    }
}
