//! A live, multi-threaded implementation of the HPC-Whisk data plane.
//!
//! The DES model in [`crate::system`] answers the paper's *quantitative*
//! questions; this module demonstrates the same drain/fast-lane protocol
//! on real OS threads and channels, so the handoff logic is exercised
//! under genuine concurrency:
//!
//! * each invoker is a thread pulling from its **own queue** after first
//!   draining the shared **fast lane** (§III-C ordering);
//! * `sigterm` flips the invoker to draining: the controller stops
//!   routing to it, the invoker flushes its unstarted backlog to the
//!   fast lane and de-registers;
//! * requests are never lost: anything accepted is eventually executed
//!   by *some* invoker as long as one lives.
//!
//! Implementation notes: crossbeam channels carry requests (the Kafka
//! role), `parking_lot::RwLock` guards the routing table, and request
//! payloads are plain closures.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A function invocation: runs on an invoker thread, returns a result
/// value handed back through the completion channel.
pub struct LiveRequest {
    /// Request id assigned by the controller.
    pub id: u64,
    /// Routing key (the "function name hash").
    pub key: u64,
    /// The work itself.
    pub work: Box<dyn FnOnce() -> u64 + Send + 'static>,
}

/// One completed invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveResult {
    /// Request id.
    pub id: u64,
    /// Which invoker executed it.
    pub invoker: u64,
    /// The work's return value.
    pub value: u64,
}

const STATE_HEALTHY: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_GONE: u8 = 2;

struct LiveInvoker {
    id: u64,
    queue_tx: Sender<LiveRequest>,
    /// Receiver clone held by the controller: it keeps the channel open
    /// so routing-vs-drain races cannot lose a request, and lets
    /// [`LiveController::join_invoker`] recover stragglers that slipped
    /// in after the invoker's final flush.
    queue_rx: Receiver<LiveRequest>,
    state: Arc<AtomicU8>,
    handle: Option<JoinHandle<()>>,
}

/// The live controller: routes requests over a dynamic invoker set.
pub struct LiveController {
    invokers: RwLock<Vec<LiveInvoker>>,
    fast_lane_tx: Sender<LiveRequest>,
    fast_lane_rx: Receiver<LiveRequest>,
    results_tx: Sender<LiveResult>,
    /// Completion stream: one message per executed request.
    pub results: Receiver<LiveResult>,
    next_id: AtomicU64,
}

impl Default for LiveController {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveController {
    /// A controller with no invokers.
    pub fn new() -> Self {
        let (fast_lane_tx, fast_lane_rx) = unbounded();
        let (results_tx, results) = unbounded();
        LiveController {
            invokers: RwLock::new(Vec::new()),
            fast_lane_tx,
            fast_lane_rx,
            results_tx,
            results,
            next_id: AtomicU64::new(0),
        }
    }

    /// Number of healthy (routable) invokers.
    pub fn n_healthy(&self) -> usize {
        self.invokers
            .read()
            .iter()
            .filter(|i| i.state.load(Ordering::SeqCst) == STATE_HEALTHY)
            .count()
    }

    /// Register a new invoker thread and make it routable.
    pub fn start_invoker(&self, id: u64) {
        let (queue_tx, queue_rx) = unbounded::<LiveRequest>();
        let state = Arc::new(AtomicU8::new(STATE_HEALTHY));
        let thread_state = state.clone();
        let thread_rx = queue_rx.clone();
        let fast_lane_rx = self.fast_lane_rx.clone();
        let fast_lane_tx = self.fast_lane_tx.clone();
        let results_tx = self.results_tx.clone();
        let handle = std::thread::spawn(move || {
            invoker_loop(
                id,
                thread_rx,
                fast_lane_rx,
                fast_lane_tx,
                results_tx,
                thread_state,
            )
        });
        self.invokers.write().push(LiveInvoker {
            id,
            queue_tx,
            queue_rx,
            state,
            handle: Some(handle),
        });
    }

    /// Submit work. Returns the request id, or an error when no healthy
    /// invoker exists (the 503 path).
    pub fn invoke(
        &self,
        key: u64,
        work: impl FnOnce() -> u64 + Send + 'static,
    ) -> Result<u64, &'static str> {
        let invokers = self.invokers.read();
        let healthy: Vec<&LiveInvoker> = invokers
            .iter()
            .filter(|i| i.state.load(Ordering::SeqCst) == STATE_HEALTHY)
            .collect();
        if healthy.is_empty() {
            return Err("503: no healthy invoker");
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let home = (crate::ids::stable_hash(key + 1) % healthy.len() as u64) as usize;
        let req = LiveRequest {
            id,
            key,
            work: Box::new(work),
        };
        // The controller's receiver clone keeps the channel open, so the
        // send cannot fail while the invoker is registered; if it ever
        // does, the fast lane is the lossless fallback.
        if let Err(e) = healthy[home].queue_tx.send(req) {
            let _ = self.fast_lane_tx.send(e.into_inner());
        }
        Ok(id)
    }

    /// SIGTERM an invoker: stop routing to it; its thread flushes and
    /// exits. Returns false if unknown.
    pub fn sigterm(&self, id: u64) -> bool {
        let invokers = self.invokers.read();
        match invokers.iter().find(|i| i.id == id) {
            Some(inv) => inv
                .state
                .compare_exchange(
                    STATE_HEALTHY,
                    STATE_DRAINING,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok(),
            None => false,
        }
    }

    /// Wait for an invoker thread to finish draining and reap it.
    pub fn join_invoker(&self, id: u64) {
        let mut invokers = self.invokers.write();
        if let Some(pos) = invokers.iter().position(|i| i.id == id) {
            let mut inv = invokers.remove(pos);
            drop(invokers); // don't hold the lock while joining
            if let Some(h) = inv.handle.take() {
                h.join().expect("invoker thread panicked");
            }
            // Recover anything routed in after the thread's final flush.
            while let Ok(req) = inv.queue_rx.try_recv() {
                let _ = self.fast_lane_tx.send(req);
            }
        }
    }

    /// Shut everything down gracefully (drain all invokers).
    pub fn shutdown(&self) {
        let ids: Vec<u64> = self.invokers.read().iter().map(|i| i.id).collect();
        for id in &ids {
            self.sigterm(*id);
        }
        for id in ids {
            self.join_invoker(id);
        }
    }
}

fn invoker_loop(
    id: u64,
    queue_rx: Receiver<LiveRequest>,
    fast_lane_rx: Receiver<LiveRequest>,
    fast_lane_tx: Sender<LiveRequest>,
    results_tx: Sender<LiveResult>,
    state: Arc<AtomicU8>,
) {
    loop {
        if state.load(Ordering::SeqCst) == STATE_DRAINING {
            // Flush the unstarted backlog to the fast lane and leave.
            while let Ok(req) = queue_rx.try_recv() {
                let _ = fast_lane_tx.send(req);
            }
            state.store(STATE_GONE, Ordering::SeqCst);
            return;
        }
        // Fast lane first (§III-C), then the private queue; park briefly
        // when idle.
        let req = match fast_lane_rx.try_recv() {
            Ok(r) => Some(r),
            Err(_) => queue_rx.recv_timeout(Duration::from_millis(2)).ok(),
        };
        if let Some(req) = req {
            let value = (req.work)();
            let _ = results_tx.send(LiveResult {
                id: req.id,
                invoker: id,
                value,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn basic_invocation_roundtrip() {
        let ctrl = LiveController::new();
        ctrl.start_invoker(1);
        let id = ctrl.invoke(7, || 42).expect("accepted");
        let res = ctrl
            .results
            .recv_timeout(Duration::from_secs(5))
            .expect("completed");
        assert_eq!(res.id, id);
        assert_eq!(res.value, 42);
        assert_eq!(res.invoker, 1);
        ctrl.shutdown();
    }

    #[test]
    fn rejects_with_no_invokers() {
        let ctrl = LiveController::new();
        assert!(ctrl.invoke(1, || 0).is_err());
        ctrl.start_invoker(1);
        assert!(ctrl.invoke(1, || 0).is_ok());
        ctrl.sigterm(1);
        ctrl.join_invoker(1);
        assert!(ctrl.invoke(1, || 0).is_err());
        // The accepted request either completed before the drain or sits
        // in the fast lane; a late-arriving invoker picks it up.
        ctrl.start_invoker(2);
        let _ = ctrl.results.recv_timeout(Duration::from_secs(5)).unwrap();
        ctrl.shutdown();
    }

    #[test]
    fn drain_hands_off_backlog_no_request_lost() {
        let ctrl = LiveController::new();
        ctrl.start_invoker(1);
        ctrl.start_invoker(2);
        // Slow work so a backlog builds on both queues.
        let mut ids = HashSet::new();
        for i in 0..200u64 {
            let id = ctrl
                .invoke(i % 16, move || {
                    std::thread::sleep(Duration::from_micros(300));
                    i
                })
                .expect("accepted");
            ids.insert(id);
        }
        // SIGTERM invoker 1 mid-burst: its backlog must flow through the
        // fast lane to invoker 2.
        ctrl.sigterm(1);
        ctrl.join_invoker(1);
        let mut done = HashSet::new();
        while done.len() < 200 {
            let r = ctrl
                .results
                .recv_timeout(Duration::from_secs(10))
                .expect("no request may be lost during drain");
            assert!(done.insert(r.id), "duplicate execution of {}", r.id);
        }
        assert_eq!(done, ids);
        ctrl.shutdown();
    }

    #[test]
    fn work_spreads_over_healthy_invokers() {
        let ctrl = LiveController::new();
        for id in 1..=4 {
            ctrl.start_invoker(id);
        }
        assert_eq!(ctrl.n_healthy(), 4);
        for i in 0..400u64 {
            ctrl.invoke(i, move || i).unwrap();
        }
        let mut by_invoker = std::collections::HashMap::new();
        for _ in 0..400 {
            let r = ctrl.results.recv_timeout(Duration::from_secs(10)).unwrap();
            *by_invoker.entry(r.invoker).or_insert(0usize) += 1;
        }
        // Hash routing over 400 distinct keys: every invoker sees work.
        assert_eq!(by_invoker.values().sum::<usize>(), 400);
        assert!(by_invoker.len() >= 3, "distribution: {by_invoker:?}");
        ctrl.shutdown();
    }

    #[test]
    fn sequential_drains_leave_last_invoker_serving() {
        let ctrl = LiveController::new();
        for id in 0..3 {
            ctrl.start_invoker(id);
        }
        for i in 0..90u64 {
            ctrl.invoke(i, move || i * 2).unwrap();
        }
        ctrl.sigterm(0);
        ctrl.join_invoker(0);
        ctrl.sigterm(1);
        ctrl.join_invoker(1);
        let mut seen = 0;
        while seen < 90 {
            let r = ctrl.results.recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(
                r.value,
                r.id * 2 // ids are assigned in submission order here
            );
            seen += 1;
        }
        assert_eq!(ctrl.n_healthy(), 1);
        ctrl.shutdown();
    }
}
