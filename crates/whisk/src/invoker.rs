//! Invoker (worker) state.

use crate::container::ContainerPool;
use crate::ids::ActivationId;
use mq::TopicId;
use std::collections::{HashSet, VecDeque};

/// Invoker lifecycle, from the controller's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokerState {
    /// Registered and routable.
    Healthy,
    /// SIGTERM received: finishing the handoff, not routable.
    Draining,
    /// Died without de-registering; the controller has not noticed yet
    /// and still routes to it (the paper's "irresponsive" workers).
    DeadUnnoticed,
}

/// One worker node's invoker.
#[derive(Debug)]
pub struct Invoker {
    /// Lifecycle state.
    pub state: InvokerState,
    /// Its private Kafka topic.
    pub topic: TopicId,
    /// Pulled-but-unstarted activations (the "internal buffer" the drain
    /// protocol flushes to the fast lane, §III-C).
    pub buffer: VecDeque<ActivationId>,
    /// Activations currently executing in containers.
    pub running: HashSet<ActivationId>,
    /// The node's container pool.
    pub pool: ContainerPool,
    /// Controller-side estimate of outstanding work (routing pressure).
    pub ctrl_inflight: usize,
}

impl Invoker {
    /// A fresh healthy invoker.
    pub fn new(topic: TopicId, slots: usize, cold_concurrency: usize) -> Self {
        Invoker {
            state: InvokerState::Healthy,
            topic,
            buffer: VecDeque::new(),
            running: HashSet::new(),
            pool: ContainerPool::new(slots, cold_concurrency),
            ctrl_inflight: 0,
        }
    }

    /// Routable by the controller?
    pub fn routable(&self) -> bool {
        // DeadUnnoticed stays true: the controller does not know yet.
        matches!(
            self.state,
            InvokerState::Healthy | InvokerState::DeadUnnoticed
        )
    }

    /// Actually able to process work?
    pub fn alive(&self) -> bool {
        matches!(self.state, InvokerState::Healthy | InvokerState::Draining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq::Broker;

    #[test]
    fn state_predicates() {
        let mut b: Broker<ActivationId> = Broker::new();
        let t = b.create_topic("inv-0");
        let mut inv = Invoker::new(t, 4, 2);
        assert!(inv.routable() && inv.alive());
        inv.state = InvokerState::Draining;
        assert!(!inv.routable() && inv.alive());
        inv.state = InvokerState::DeadUnnoticed;
        assert!(inv.routable() && !inv.alive());
    }
}
