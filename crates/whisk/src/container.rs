//! Per-invoker container pool: warm/cold lifecycle with LRU eviction and
//! a bounded cold-start concurrency (exceeding it fails the activation —
//! the mechanism behind the paper's failure window when few invokers
//! carried the whole load, §V-C).

use crate::ids::FunctionId;
use simcore::SimTime;

/// Outcome of trying to place an activation on a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// A warm container for this function was available.
    Warm,
    /// A new container must be cold-started (slot reserved).
    Cold,
    /// A cold start is needed but too many containers are already
    /// booting; the caller decides whether to wait or fail.
    ColdBlocked,
    /// Every slot is running; try again when one frees.
    NoCapacity,
}

/// The container pool of one invoker node.
#[derive(Debug, Clone)]
pub struct ContainerPool {
    slots: usize,
    cold_concurrency: usize,
    busy: usize,
    cold_starting: usize,
    /// Idle warm containers: `(function, last_used)`.
    warm_idle: Vec<(FunctionId, SimTime)>,
    evictions: u64,
}

impl ContainerPool {
    /// A pool with `slots` container slots and the given cold-start
    /// concurrency bound.
    pub fn new(slots: usize, cold_concurrency: usize) -> Self {
        assert!(slots >= 1);
        ContainerPool {
            slots,
            cold_concurrency: cold_concurrency.max(1),
            busy: 0,
            cold_starting: 0,
            warm_idle: Vec::new(),
            evictions: 0,
        }
    }

    /// Try to place an activation of `f`.
    pub fn acquire(&mut self, f: FunctionId, _now: SimTime) -> Acquire {
        if let Some(pos) = self.warm_idle.iter().position(|(wf, _)| *wf == f) {
            self.warm_idle.swap_remove(pos);
            self.busy += 1;
            return Acquire::Warm;
        }
        if self.busy + self.warm_idle.len() >= self.slots {
            if self.warm_idle.is_empty() {
                return Acquire::NoCapacity;
            }
            // Evict the least recently used idle container to make room.
            let lru = self
                .warm_idle
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.warm_idle.swap_remove(lru);
            self.evictions += 1;
        }
        if self.cold_starting >= self.cold_concurrency {
            return Acquire::ColdBlocked;
        }
        self.busy += 1;
        self.cold_starting += 1;
        Acquire::Cold
    }

    /// A cold start finished booting (the slot stays busy with the
    /// execution).
    pub fn cold_done(&mut self) {
        debug_assert!(self.cold_starting > 0);
        self.cold_starting = self.cold_starting.saturating_sub(1);
    }

    /// An execution finished: the container becomes warm-idle.
    pub fn release(&mut self, f: FunctionId, now: SimTime) {
        debug_assert!(self.busy > 0);
        self.busy -= 1;
        self.warm_idle.push((f, now));
        debug_assert!(self.busy + self.warm_idle.len() <= self.slots);
    }

    /// A running execution was abandoned (interrupt/kill): the slot is
    /// freed without keeping a warm container.
    pub fn abandon(&mut self) {
        self.busy = self.busy.saturating_sub(1);
    }

    /// Containers currently executing.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Idle warm containers.
    pub fn n_warm_idle(&self) -> usize {
        self.warm_idle.len()
    }

    /// Free capacity for new executions.
    pub fn free_slots(&self) -> usize {
        self.slots - self.busy
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn warm_hit_after_release() {
        let mut p = ContainerPool::new(2, 4);
        assert_eq!(p.acquire(FunctionId(1), t(0)), Acquire::Cold);
        p.cold_done();
        p.release(FunctionId(1), t(1));
        assert_eq!(p.acquire(FunctionId(1), t(2)), Acquire::Warm);
        assert_eq!(p.busy(), 1);
    }

    #[test]
    fn no_capacity_when_all_busy() {
        let mut p = ContainerPool::new(1, 4);
        assert_eq!(p.acquire(FunctionId(1), t(0)), Acquire::Cold);
        assert_eq!(p.acquire(FunctionId(2), t(0)), Acquire::NoCapacity);
    }

    #[test]
    fn lru_eviction_picks_oldest() {
        let mut p = ContainerPool::new(2, 4);
        // Warm two containers for functions 1 and 2.
        p.acquire(FunctionId(1), t(0));
        p.cold_done();
        p.release(FunctionId(1), t(1));
        p.acquire(FunctionId(2), t(2));
        p.cold_done();
        p.release(FunctionId(2), t(5));
        // A third function forces eviction of the LRU (function 1).
        assert_eq!(p.acquire(FunctionId(3), t(6)), Acquire::Cold);
        p.cold_done();
        assert_eq!(p.evictions(), 1);
        p.release(FunctionId(3), t(7));
        // Function 2 is still warm, function 1 is not.
        assert_eq!(p.acquire(FunctionId(2), t(8)), Acquire::Warm);
        p.release(FunctionId(2), t(9));
        assert_ne!(p.acquire(FunctionId(1), t(10)), Acquire::Warm);
    }

    #[test]
    fn cold_concurrency_limit_fails() {
        let mut p = ContainerPool::new(8, 2);
        assert_eq!(p.acquire(FunctionId(1), t(0)), Acquire::Cold);
        assert_eq!(p.acquire(FunctionId(2), t(0)), Acquire::Cold);
        assert_eq!(p.acquire(FunctionId(3), t(0)), Acquire::ColdBlocked);
        p.cold_done();
        assert_eq!(p.acquire(FunctionId(3), t(1)), Acquire::Cold);
    }

    #[test]
    fn abandon_frees_slot_without_warm_container() {
        let mut p = ContainerPool::new(1, 1);
        p.acquire(FunctionId(1), t(0));
        p.cold_done();
        p.abandon();
        assert_eq!(p.busy(), 0);
        assert_eq!(p.n_warm_idle(), 0);
        assert_eq!(p.free_slots(), 1);
    }

    #[test]
    fn capacity_invariant_under_churn() {
        let mut p = ContainerPool::new(4, 2);
        let mut running: Vec<FunctionId> = vec![];
        for i in 0..200u32 {
            let f = FunctionId(i % 7);
            match p.acquire(f, t(i as u64)) {
                Acquire::Warm => running.push(f),
                Acquire::Cold => {
                    p.cold_done();
                    running.push(f);
                }
                Acquire::ColdBlocked | Acquire::NoCapacity => {
                    if let Some(g) = running.pop() {
                        p.release(g, t(i as u64));
                    }
                }
            }
            assert!(p.busy() + p.n_warm_idle() <= 4);
        }
    }
}
