//! FaaS platform events and notes.

use crate::activation::Outcome;
use crate::ids::{ActivationId, FunctionId, InvokerId};
use simcore::SimTime;

/// Internal timing events of the FaaS platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhiskEvent {
    /// An accepted activation becomes visible in its invoker's topic
    /// (controller overhead + Kafka produce latency elapsed).
    Enqueue {
        /// The activation.
        act: ActivationId,
        /// Destination invoker.
        inv: InvokerId,
    },
    /// An invoker's periodic topic poll.
    InvokerPoll(InvokerId),
    /// A container finished booting for an activation.
    ColdStartDone {
        /// The invoker.
        inv: InvokerId,
        /// The activation waiting on the container.
        act: ActivationId,
    },
    /// An execution finished.
    ExecDone {
        /// The invoker.
        inv: InvokerId,
        /// The activation.
        act: ActivationId,
    },
    /// A draining invoker finished its flush and de-registers.
    DrainComplete(InvokerId),
    /// The controller notices a silently-dead invoker (missed pings).
    DeathNoticed(InvokerId),
    /// Controller's periodic timeout scan.
    TimeoutScan,
}

/// Effects surfaced to the composition layer / metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum WhiskNote {
    /// A request was rejected with 503 (no healthy invoker).
    Rejected503 {
        /// The function requested.
        function: FunctionId,
        /// When.
        at: SimTime,
    },
    /// An activation was answered (or declared timed out).
    ActivationDone {
        /// The activation.
        act: ActivationId,
        /// The function.
        function: FunctionId,
        /// Outcome.
        outcome: Outcome,
        /// Client submission time.
        submitted: SimTime,
        /// Answer time (client-side, including the client RTT share).
        answered: SimTime,
        /// Delivery attempts (>1 = re-routed through the fast lane).
        attempts: u32,
    },
    /// An invoker registered and is healthy.
    InvokerUp(InvokerId),
    /// An invoker began draining (SIGTERM received).
    InvokerDraining(InvokerId),
    /// An invoker left the system.
    InvokerGone {
        /// The invoker.
        inv: InvokerId,
        /// True if it de-registered cleanly (drain protocol), false if
        /// it died silently and the controller noticed later.
        clean: bool,
    },
}
