//! # hpcwhisk-whisk
//!
//! An OpenWhisk-like Function-as-a-Service platform with the HPC-Whisk
//! dynamic-invoker extensions (paper §II–III).
//!
//! The platform is an event-driven state machine (see [`WhiskSys`])
//! designed to run under the deterministic DES engine of
//! `hpcwhisk-simcore`. It models the full invocation data path —
//! controller routing by function hash over a *dynamic* invoker set,
//! per-invoker Kafka topics (via `hpcwhisk-mq`), invoker poll loops,
//! warm/cold container pools with LRU eviction and bounded cold-start
//! concurrency — plus the paper's contributions:
//!
//! * dynamic registration and *graceful de-registration* of invokers,
//! * the SIGTERM drain protocol with the global **fast-lane** topic,
//! * recovery of silently-dead invokers' queues, with a
//!   [`DynamicsMode::Baseline`] switch reproducing stock OpenWhisk's
//!   lose-the-queue behaviour for ablation.
//!
//! This crate is the **DES plane** only. The live plane — the same
//! architecture on real OS threads, serving real traffic — lives in
//! `crates/gateway` (`hpcwhisk_gateway`), which absorbed and
//! generalized the thread demo that used to live here as
//! `whisk::live`.

pub mod action;
pub mod activation;
pub mod config;
pub mod container;
pub mod events;
pub mod ids;
pub mod invoker;
pub mod system;

pub use action::{ExecModel, FunctionSpec};
pub use activation::{ActState, ActivationRecord, InvokeResult, Outcome};
pub use config::{DynamicsMode, WhiskConfig};
pub use container::{Acquire, ContainerPool};
pub use events::{WhiskEvent, WhiskNote};
pub use ids::{ActivationId, FunctionId, InvokerId};
pub use invoker::{Invoker, InvokerState};
pub use system::{WhiskCounters, WhiskSeries, WhiskSys};
