//! The simulation driver: [`Engine`] advances virtual time by repeatedly
//! popping the earliest event and handing it to a [`Process`]
//! implementation, which pushes follow-up events through an [`Outbox`].

use crate::events::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Where a [`Process`] deposits follow-up events.
///
/// Events may be scheduled at or after the current instant; scheduling in
/// the past is a logic error and is clamped to "now" (with a debug
/// assertion so tests catch it).
pub struct Outbox<E> {
    now: SimTime,
    staged: Vec<(SimTime, E)>,
}

impl<E> Outbox<E> {
    /// A fresh outbox anchored at `now`.
    pub fn new(now: SimTime) -> Self {
        Outbox {
            now,
            staged: Vec::new(),
        }
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (clamped to `now`).
    pub fn at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        self.staged.push((at.max(self.now), event));
    }

    /// Schedule `event` after a relative delay.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.staged.push((self.now + delay, event));
    }

    /// Schedule `event` at the current instant (processed after all
    /// already-queued events for this instant).
    pub fn now_event(&mut self, event: E) {
        self.staged.push((self.now, event));
    }

    /// Number of staged events.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// True iff nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Drain the staged events (used by composition layers that translate
    /// a subsystem outbox into the global event enum).
    pub fn drain(&mut self) -> std::vec::Drain<'_, (SimTime, E)> {
        self.staged.drain(..)
    }

    /// Re-anchor the outbox at a new instant, asserting it is empty.
    pub fn reset(&mut self, now: SimTime) {
        debug_assert!(self.staged.is_empty(), "outbox reset with staged events");
        self.now = now;
    }
}

/// A system driven by the engine.
pub trait Process<E> {
    /// Handle one event at its timestamp; push follow-ups into `out`.
    fn handle(&mut self, now: SimTime, event: E, out: &mut Outbox<E>);
}

// Allow closures as processes — handy in tests and small examples.
impl<E, F: FnMut(SimTime, E, &mut Outbox<E>)> Process<E> for F {
    fn handle(&mut self, now: SimTime, event: E, out: &mut Outbox<E>) {
        self(now, event, out)
    }
}

/// Why the engine stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// The queue ran dry.
    QueueEmpty,
    /// The configured horizon was reached; events at or beyond the
    /// horizon remain queued.
    HorizonReached,
    /// The configured step budget was exhausted (runaway protection).
    StepBudgetExhausted,
}

/// The simulation driver.
///
/// ```
/// use hpcwhisk_simcore::{Engine, Outbox, SimDuration, SimTime};
///
/// // Count ticks of a 1-second clock for one minute.
/// let mut ticks = 0u32;
/// let mut engine = Engine::new();
/// engine.schedule(SimTime::ZERO, ());
/// engine.run_until(
///     SimTime::from_mins(1),
///     &mut |_now: SimTime, (): (), out: &mut Outbox<()>| {
///         ticks += 1;
///         out.after(SimDuration::from_secs(1), ());
///     },
/// );
/// assert_eq!(ticks, 60);
/// ```
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    step_budget: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at t = 0 with a very large step budget.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            step_budget: u64::MAX,
        }
    }

    /// A fresh engine whose event queue pre-reserves `cap` entries —
    /// avoids rehashing the binary heap during the bootstrap burst of a
    /// large experiment.
    pub fn with_queue_capacity(cap: usize) -> Self {
        Engine {
            queue: EventQueue::with_capacity(cap),
            now: SimTime::ZERO,
            step_budget: u64::MAX,
        }
    }

    /// Cap the total number of events processed (runaway protection in
    /// tests and calibration loops).
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Current simulation time (the timestamp of the last processed
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an initial event.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.push(at, event);
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Timestamp of the earliest pending event, if any — what the next
    /// [`run_until`](Engine::run_until) segment would dispatch first.
    /// Lets an incremental driver (a live lease source stepping the
    /// simulation against a wall clock) sleep until something is
    /// actually due instead of polling blind.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Total events processed so far.
    pub fn steps(&self) -> u64 {
        self.queue.total_popped()
    }

    /// Run until the queue empties, the step budget is exhausted, or an
    /// event at or beyond `horizon` is reached (that event stays queued).
    ///
    /// One heap pop per dispatched event: a popped event at or past the
    /// horizon is requeued under its original sequence number, so the
    /// FIFO order among same-timestamp events survives segmented runs
    /// (asserted by `segmented_run_equals_one_shot`).
    pub fn run_until<P: Process<E>>(&mut self, horizon: SimTime, process: &mut P) -> StopCondition {
        let mut out = Outbox::new(self.now);
        loop {
            if self.queue.total_popped() >= self.step_budget {
                return StopCondition::StepBudgetExhausted;
            }
            let Some((t, seq, ev)) = self.queue.pop_with_seq() else {
                return StopCondition::QueueEmpty;
            };
            if t >= horizon {
                self.queue.requeue(t, seq, ev);
                self.now = horizon;
                return StopCondition::HorizonReached;
            }
            self.now = t;
            out.reset(t);
            process.handle(t, ev, &mut out);
            for (at, e) in out.drain() {
                self.queue.push(at, e);
            }
        }
    }

    /// Run until the queue empties (or the step budget trips).
    pub fn run_to_completion<P: Process<E>>(&mut self, process: &mut P) -> StopCondition {
        self.run_until(SimTime::MAX, process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Stopper,
    }

    #[test]
    fn ping_chain_runs_in_order() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(1), Ev::Ping(0));
        let mut seen = vec![];
        let cond = engine.run_to_completion(&mut |now: SimTime, ev: Ev, out: &mut Outbox<Ev>| {
            if let Ev::Ping(n) = ev {
                seen.push((now, n));
                if n < 4 {
                    out.after(SimDuration::from_secs(2), Ev::Ping(n + 1));
                }
            }
        });
        assert_eq!(cond, StopCondition::QueueEmpty);
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[4], (SimTime::from_secs(9), 4));
        assert_eq!(engine.steps(), 5);
    }

    #[test]
    fn horizon_stops_and_preserves_future_events() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(5), Ev::Stopper);
        engine.schedule(SimTime::from_secs(1), Ev::Ping(1));
        let mut count = 0;
        let cond = engine.run_until(
            SimTime::from_secs(3),
            &mut |_: SimTime, _: Ev, _: &mut Outbox<Ev>| count += 1,
        );
        assert_eq!(cond, StopCondition::HorizonReached);
        assert_eq!(count, 1);
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.now(), SimTime::from_secs(3));
    }

    #[test]
    fn step_budget_trips() {
        let mut engine = Engine::new().with_step_budget(10);
        engine.schedule(SimTime::ZERO, Ev::Ping(0));
        let cond = engine.run_to_completion(&mut |_: SimTime, _: Ev, out: &mut Outbox<Ev>| {
            out.after(SimDuration::from_millis(1), Ev::Ping(0));
        });
        assert_eq!(cond, StopCondition::StepBudgetExhausted);
        assert_eq!(engine.steps(), 10);
    }

    #[test]
    fn same_instant_events_processed_in_push_order() {
        let mut engine = Engine::new();
        for i in 0..5 {
            engine.schedule(SimTime::from_secs(1), Ev::Ping(i));
        }
        let mut seen = vec![];
        engine.run_to_completion(&mut |_: SimTime, ev: Ev, _: &mut Outbox<Ev>| {
            if let Ev::Ping(n) = ev {
                seen.push(n)
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    /// A stochastic-fanout process driven by a seeded [`crate::SimRng`]:
    /// runs the engine and folds every `(time, payload)` dispatch into
    /// an FNV-1a trace hash.
    fn event_trace_hash(seed: u64, segments: &[u64]) -> (u64, u64) {
        use crate::SimRng;
        let mut rng = SimRng::seed_from_u64(seed);
        let mut engine: Engine<u64> = Engine::with_queue_capacity(256);
        for i in 0..16 {
            engine.schedule(SimTime::from_millis(i * 37), i);
        }
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |x: u64| {
            hash ^= x;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        };
        let mut dispatched = 0u64;
        let mut process = |now: SimTime, ev: u64, out: &mut Outbox<u64>| {
            dispatched += 1;
            fold(now.as_millis());
            fold(ev);
            // Data-dependent fanout: 0–2 follow-ups at jittered delays,
            // many sharing timestamps (stressing the seq tiebreaker).
            if dispatched < 4_000 {
                for _ in 0..rng.range_u64(0, 3) {
                    out.after(
                        SimDuration::from_millis(rng.range_u64(0, 40)),
                        ev ^ rng.next_u64(),
                    );
                }
            }
        };
        for h in segments {
            engine.run_until(SimTime::from_millis(*h), &mut process);
        }
        engine.run_to_completion(&mut process);
        (hash, dispatched)
    }

    /// Same seed ⇒ bit-identical event trace (the reproducibility
    /// contract every experiment rests on).
    #[test]
    fn deterministic_trace_hash_for_same_seed() {
        let (h1, n1) = event_trace_hash(42, &[]);
        let (h2, n2) = event_trace_hash(42, &[]);
        assert_eq!(n1, n2);
        assert_eq!(h1, h2);
        assert!(n1 > 200, "fanout actually ran: {n1}");
        let (h3, _) = event_trace_hash(43, &[]);
        assert_ne!(h1, h3, "different seeds must diverge");
    }

    /// Splitting a run into arbitrary `run_until` segments must not
    /// change the trace: the horizon requeue preserves the popped
    /// event's original FIFO position among same-timestamp events.
    #[test]
    fn segmented_run_equals_one_shot() {
        let (whole, n_whole) = event_trace_hash(7, &[]);
        let (split, n_split) = event_trace_hash(7, &[10, 11, 50, 333, 2_000]);
        assert_eq!(n_whole, n_split);
        assert_eq!(whole, split);
    }

    #[test]
    fn horizon_requeue_not_counted_as_step() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule(SimTime::from_secs(10), 1);
        let cond = engine.run_until(
            SimTime::from_secs(5),
            &mut |_: SimTime, _: u32, _: &mut Outbox<u32>| {},
        );
        assert_eq!(cond, StopCondition::HorizonReached);
        assert_eq!(engine.steps(), 0, "requeued event must not count");
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn outbox_now_event_runs_same_instant() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(2), Ev::Ping(0));
        let mut times = vec![];
        engine.run_to_completion(&mut |now: SimTime, ev: Ev, out: &mut Outbox<Ev>| {
            times.push(now);
            if ev == Ev::Ping(0) && times.len() == 1 {
                out.now_event(Ev::Ping(1));
            }
        });
        assert_eq!(times, vec![SimTime::from_secs(2), SimTime::from_secs(2)]);
    }
}
