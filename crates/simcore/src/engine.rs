//! The simulation driver: [`Engine`] advances virtual time by repeatedly
//! popping the earliest event and handing it to a [`Process`]
//! implementation, which pushes follow-up events through an [`Outbox`].

use crate::events::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Where a [`Process`] deposits follow-up events.
///
/// Events may be scheduled at or after the current instant; scheduling in
/// the past is a logic error and is clamped to "now" (with a debug
/// assertion so tests catch it).
pub struct Outbox<E> {
    now: SimTime,
    staged: Vec<(SimTime, E)>,
}

impl<E> Outbox<E> {
    /// A fresh outbox anchored at `now`.
    pub fn new(now: SimTime) -> Self {
        Outbox {
            now,
            staged: Vec::new(),
        }
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (clamped to `now`).
    pub fn at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        self.staged.push((at.max(self.now), event));
    }

    /// Schedule `event` after a relative delay.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.staged.push((self.now + delay, event));
    }

    /// Schedule `event` at the current instant (processed after all
    /// already-queued events for this instant).
    pub fn now_event(&mut self, event: E) {
        self.staged.push((self.now, event));
    }

    /// Number of staged events.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// True iff nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Drain the staged events (used by composition layers that translate
    /// a subsystem outbox into the global event enum).
    pub fn drain(&mut self) -> std::vec::Drain<'_, (SimTime, E)> {
        self.staged.drain(..)
    }

    /// Re-anchor the outbox at a new instant, asserting it is empty.
    pub fn reset(&mut self, now: SimTime) {
        debug_assert!(self.staged.is_empty(), "outbox reset with staged events");
        self.now = now;
    }
}

/// A system driven by the engine.
pub trait Process<E> {
    /// Handle one event at its timestamp; push follow-ups into `out`.
    fn handle(&mut self, now: SimTime, event: E, out: &mut Outbox<E>);
}

// Allow closures as processes — handy in tests and small examples.
impl<E, F: FnMut(SimTime, E, &mut Outbox<E>)> Process<E> for F {
    fn handle(&mut self, now: SimTime, event: E, out: &mut Outbox<E>) {
        self(now, event, out)
    }
}

/// Why the engine stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// The queue ran dry.
    QueueEmpty,
    /// The configured horizon was reached; events at or beyond the
    /// horizon remain queued.
    HorizonReached,
    /// The configured step budget was exhausted (runaway protection).
    StepBudgetExhausted,
}

/// The simulation driver.
///
/// ```
/// use hpcwhisk_simcore::{Engine, Outbox, SimDuration, SimTime};
///
/// // Count ticks of a 1-second clock for one minute.
/// let mut ticks = 0u32;
/// let mut engine = Engine::new();
/// engine.schedule(SimTime::ZERO, ());
/// engine.run_until(
///     SimTime::from_mins(1),
///     &mut |_now: SimTime, (): (), out: &mut Outbox<()>| {
///         ticks += 1;
///         out.after(SimDuration::from_secs(1), ());
///     },
/// );
/// assert_eq!(ticks, 60);
/// ```
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    step_budget: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at t = 0 with a very large step budget.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            step_budget: u64::MAX,
        }
    }

    /// Cap the total number of events processed (runaway protection in
    /// tests and calibration loops).
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = budget;
        self
    }

    /// Current simulation time (the timestamp of the last processed
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an initial event.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.push(at, event);
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events processed so far.
    pub fn steps(&self) -> u64 {
        self.queue.total_popped()
    }

    /// Run until the queue empties, the step budget is exhausted, or an
    /// event at or beyond `horizon` is reached (that event stays queued).
    pub fn run_until<P: Process<E>>(&mut self, horizon: SimTime, process: &mut P) -> StopCondition {
        let mut out = Outbox::new(self.now);
        loop {
            if self.queue.total_popped() >= self.step_budget {
                return StopCondition::StepBudgetExhausted;
            }
            match self.queue.peek_time() {
                None => return StopCondition::QueueEmpty,
                Some(t) if t >= horizon => {
                    self.now = horizon;
                    return StopCondition::HorizonReached;
                }
                Some(_) => {}
            }
            let (t, ev) = self.queue.pop().expect("peeked entry vanished");
            self.now = t;
            out.reset(t);
            process.handle(t, ev, &mut out);
            for (at, e) in out.drain() {
                self.queue.push(at, e);
            }
        }
    }

    /// Run until the queue empties (or the step budget trips).
    pub fn run_to_completion<P: Process<E>>(&mut self, process: &mut P) -> StopCondition {
        self.run_until(SimTime::MAX, process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Stopper,
    }

    #[test]
    fn ping_chain_runs_in_order() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(1), Ev::Ping(0));
        let mut seen = vec![];
        let cond = engine.run_to_completion(&mut |now: SimTime, ev: Ev, out: &mut Outbox<Ev>| {
            if let Ev::Ping(n) = ev {
                seen.push((now, n));
                if n < 4 {
                    out.after(SimDuration::from_secs(2), Ev::Ping(n + 1));
                }
            }
        });
        assert_eq!(cond, StopCondition::QueueEmpty);
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[4], (SimTime::from_secs(9), 4));
        assert_eq!(engine.steps(), 5);
    }

    #[test]
    fn horizon_stops_and_preserves_future_events() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(5), Ev::Stopper);
        engine.schedule(SimTime::from_secs(1), Ev::Ping(1));
        let mut count = 0;
        let cond = engine.run_until(
            SimTime::from_secs(3),
            &mut |_: SimTime, _: Ev, _: &mut Outbox<Ev>| count += 1,
        );
        assert_eq!(cond, StopCondition::HorizonReached);
        assert_eq!(count, 1);
        assert_eq!(engine.pending(), 1);
        assert_eq!(engine.now(), SimTime::from_secs(3));
    }

    #[test]
    fn step_budget_trips() {
        let mut engine = Engine::new().with_step_budget(10);
        engine.schedule(SimTime::ZERO, Ev::Ping(0));
        let cond = engine.run_to_completion(&mut |_: SimTime, _: Ev, out: &mut Outbox<Ev>| {
            out.after(SimDuration::from_millis(1), Ev::Ping(0));
        });
        assert_eq!(cond, StopCondition::StepBudgetExhausted);
        assert_eq!(engine.steps(), 10);
    }

    #[test]
    fn same_instant_events_processed_in_push_order() {
        let mut engine = Engine::new();
        for i in 0..5 {
            engine.schedule(SimTime::from_secs(1), Ev::Ping(i));
        }
        let mut seen = vec![];
        engine.run_to_completion(&mut |_: SimTime, ev: Ev, _: &mut Outbox<Ev>| {
            if let Ev::Ping(n) = ev {
                seen.push(n)
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn outbox_now_event_runs_same_instant() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(2), Ev::Ping(0));
        let mut times = vec![];
        engine.run_to_completion(&mut |now: SimTime, ev: Ev, out: &mut Outbox<Ev>| {
            times.push(now);
            if ev == Ev::Ping(0) && times.len() == 1 {
                out.now_event(Ev::Ping(1));
            }
        });
        assert_eq!(times, vec![SimTime::from_secs(2), SimTime::from_secs(2)]);
    }
}
