//! Probability distributions for workload modelling.
//!
//! Implemented from first principles (inverse transform and Box–Muller)
//! so the workspace does not need `rand_distr`. Everything samples
//! non-negative `f64` values interpreted by callers as seconds/minutes.
//!
//! Calibration helpers construct distributions from published quantiles —
//! e.g. the paper reports *median 2 min, 75th percentile 4 min* for idle
//! period lengths, which [`LogNormal::from_median_and_quantile`] turns
//! into `(mu, sigma)` directly.

use crate::rng::SimRng;

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Used for quantile-based calibration.
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inv_norm_cdf domain: 0 < p < 1, got {p}"
    );
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Anything that can produce a non-negative sample.
pub trait Sample {
    /// Draw one value.
    fn sample(&self, rng: &mut SimRng) -> f64;
}

/// A fixed constant (degenerate distribution).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl Sample for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (exclusive).
    pub hi: f64,
}

impl Uniform {
    /// Construct, asserting `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "Uniform: lo {lo} > hi {hi}");
        Uniform { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Exponential with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    /// Rate parameter (> 0).
    pub lambda: f64,
}

impl Exp {
    /// Construct from the rate.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "Exp: lambda must be > 0");
        Exp { lambda }
    }
    /// Construct from the mean.
    pub fn from_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }
}

impl Sample for Exp {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.f64_open().ln() / self.lambda
    }
}

/// Log-normal: `exp(mu + sigma * Z)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Location of the underlying normal.
    pub mu: f64,
    /// Scale of the underlying normal (> 0).
    pub sigma: f64,
}

impl LogNormal {
    /// Construct from `(mu, sigma)` of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "LogNormal: sigma must be > 0");
        LogNormal { mu, sigma }
    }

    /// Calibrate from the median and one other quantile, the form in
    /// which the paper reports its workload statistics.
    ///
    /// For a log-normal, `median = exp(mu)` and
    /// `Q(p) = exp(mu + sigma * z_p)`.
    pub fn from_median_and_quantile(median: f64, p: f64, quantile: f64) -> Self {
        assert!(median > 0.0 && quantile > 0.0);
        let z = inv_norm_cdf(p);
        assert!(z.abs() > 1e-12, "quantile too close to the median");
        let mu = median.ln();
        let sigma = (quantile.ln() - mu) / z;
        assert!(sigma > 0.0, "inconsistent quantile pair");
        LogNormal { mu, sigma }
    }

    /// Theoretical mean `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Theoretical quantile function.
    pub fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * inv_norm_cdf(p)).exp()
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Box–Muller; one of the pair is discarded to keep the sampler
        // stateless.
        let u1 = rng.f64_open();
        let u2 = rng.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Weibull with shape `k` and scale `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    /// Shape (> 0): k < 1 gives a heavy tail, k = 1 is exponential.
    pub k: f64,
    /// Scale (> 0).
    pub lambda: f64,
}

impl Weibull {
    /// Construct from shape and scale.
    pub fn new(k: f64, lambda: f64) -> Self {
        assert!(k > 0.0 && lambda > 0.0);
        Weibull { k, lambda }
    }
}

impl Sample for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lambda * (-rng.f64_open().ln()).powf(1.0 / self.k)
    }
}

/// Pareto (Type I) with minimum `x_min` and tail index `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Scale / minimum value (> 0).
    pub x_min: f64,
    /// Tail index (> 0); smaller = heavier tail.
    pub alpha: f64,
}

impl Pareto {
    /// Construct from scale and tail index.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0);
        Pareto { x_min, alpha }
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.x_min / rng.f64_open().powf(1.0 / self.alpha)
    }
}

/// A boxed distribution, for heterogeneous composition.
pub type DynDist = Box<dyn Sample + Send + Sync>;

/// Finite mixture: picks component `i` with probability `weights[i]`.
pub struct Mixture {
    components: Vec<(f64, DynDist)>,
    total_weight: f64,
}

impl Mixture {
    /// Build from `(weight, distribution)` pairs; weights need not sum
    /// to 1 (they are normalized).
    pub fn new(components: Vec<(f64, DynDist)>) -> Self {
        assert!(!components.is_empty(), "Mixture: no components");
        let total_weight: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0.0, "Mixture: weights sum to zero");
        Mixture {
            components,
            total_weight,
        }
    }
}

impl Sample for Mixture {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let mut pick = rng.f64() * self.total_weight;
        for (w, d) in &self.components {
            if pick < *w {
                return d.sample(rng);
            }
            pick -= w;
        }
        // Floating-point slack: fall back to the last component.
        self.components.last().unwrap().1.sample(rng)
    }
}

/// Resamples an explicit set of observations (with replacement).
#[derive(Debug, Clone)]
pub struct Empirical {
    values: Vec<f64>,
}

impl Empirical {
    /// Build from raw observations.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "Empirical: no observations");
        Empirical { values }
    }
}

impl Sample for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        *rng.choose(&self.values)
    }
}

/// Clamp another distribution into `[lo, hi]` by truncation-resampling
/// (up to a bounded number of attempts, then clamping).
pub struct Clamped<D: Sample> {
    inner: D,
    lo: f64,
    hi: f64,
}

impl<D: Sample> Clamped<D> {
    /// Wrap `inner`, constraining samples to `[lo, hi]`.
    pub fn new(inner: D, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi);
        Clamped { inner, lo, hi }
    }
}

impl<D: Sample> Sample for Clamped<D> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        for _ in 0..16 {
            let v = self.inner.sample(rng);
            if v >= self.lo && v <= self.hi {
                return v;
            }
        }
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

/// Shift another distribution by a constant offset.
pub struct Shifted<D: Sample> {
    inner: D,
    offset: f64,
}

impl<D: Sample> Shifted<D> {
    /// Wrap `inner`, adding `offset` to every sample.
    pub fn new(inner: D, offset: f64) -> Self {
        Shifted { inner, offset }
    }
}

impl<D: Sample> Sample for Shifted<D> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.inner.sample(rng) + self.offset
    }
}

impl Sample for DynDist {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.as_ref().sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_sorted<D: Sample>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut v: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    fn quantile(sorted: &[f64], p: f64) -> f64 {
        sorted[((sorted.len() as f64 - 1.0) * p) as usize]
    }

    #[test]
    fn inv_norm_cdf_known_values() {
        assert!((inv_norm_cdf(0.5)).abs() < 1e-9);
        assert!((inv_norm_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inv_norm_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inv_norm_cdf(0.841344746) - 1.0).abs() < 1e-6);
        // Tail regions (the rational approximation switches branches).
        assert!((inv_norm_cdf(0.001) + 3.090232).abs() < 1e-4);
        assert!((inv_norm_cdf(0.999) - 3.090232).abs() < 1e-4);
    }

    #[test]
    fn exp_mean_matches() {
        let d = Exp::from_mean(5.0);
        let s = draw_sorted(&d, 50_000, 1);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean={mean}");
        // Median of Exp(λ) is ln2/λ.
        assert!((quantile(&s, 0.5) - 5.0 * 2f64.ln()).abs() < 0.15);
    }

    #[test]
    fn lognormal_quantile_calibration() {
        // The paper's idle-period marginals: median 2 (min), p75 = 4.
        let d = LogNormal::from_median_and_quantile(2.0, 0.75, 4.0);
        assert!((d.quantile(0.5) - 2.0).abs() < 1e-9);
        assert!((d.quantile(0.75) - 4.0).abs() < 1e-6);
        let s = draw_sorted(&d, 80_000, 2);
        assert!(
            (quantile(&s, 0.5) - 2.0).abs() < 0.1,
            "med={}",
            quantile(&s, 0.5)
        );
        assert!((quantile(&s, 0.75) - 4.0).abs() < 0.2);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - d.mean()).abs() < 0.2 * d.mean());
    }

    #[test]
    fn weibull_median() {
        // Median of Weibull(k, λ) is λ (ln 2)^{1/k}.
        let d = Weibull::new(0.8, 3.0);
        let s = draw_sorted(&d, 50_000, 3);
        let expect = 3.0 * (2f64.ln()).powf(1.0 / 0.8);
        assert!((quantile(&s, 0.5) - expect).abs() < 0.1 * expect);
    }

    #[test]
    fn pareto_min_and_tail() {
        let d = Pareto::new(2.0, 1.5);
        let s = draw_sorted(&d, 50_000, 4);
        assert!(s[0] >= 2.0);
        // Median = x_min * 2^{1/alpha}.
        let expect = 2.0 * 2f64.powf(1.0 / 1.5);
        assert!((quantile(&s, 0.5) - expect).abs() < 0.1 * expect);
        // The tail should be heavy: p99 well above the median.
        assert!(quantile(&s, 0.99) > 4.0 * expect);
    }

    #[test]
    fn mixture_weights_respected() {
        let m = Mixture::new(vec![
            (0.9, Box::new(Constant(1.0)) as DynDist),
            (0.1, Box::new(Constant(100.0)) as DynDist),
        ]);
        let s = draw_sorted(&m, 20_000, 5);
        let big = s.iter().filter(|v| **v > 50.0).count() as f64 / s.len() as f64;
        assert!((big - 0.1).abs() < 0.02, "big share={big}");
    }

    #[test]
    fn empirical_resamples_support() {
        let e = Empirical::new(vec![1.0, 2.0, 3.0]);
        let s = draw_sorted(&e, 3_000, 6);
        assert!(s.iter().all(|v| [1.0, 2.0, 3.0].contains(v)));
        assert!(s.contains(&1.0) && s.contains(&2.0) && s.contains(&3.0));
    }

    #[test]
    fn clamped_respects_bounds() {
        let c = Clamped::new(LogNormal::new(0.0, 3.0), 0.5, 2.0);
        let s = draw_sorted(&c, 5_000, 7);
        assert!(s[0] >= 0.5 && *s.last().unwrap() <= 2.0);
    }

    #[test]
    fn shifted_offsets() {
        let sh = Shifted::new(Constant(1.0), 4.0);
        let mut rng = SimRng::seed_from_u64(8);
        assert_eq!(sh.sample(&mut rng), 5.0);
    }

    #[test]
    #[should_panic]
    fn mixture_rejects_empty() {
        let _ = Mixture::new(vec![]);
    }
}
