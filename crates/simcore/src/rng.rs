//! Seeded randomness for reproducible experiments.
//!
//! Every stochastic choice in the reproduction flows through [`SimRng`],
//! so any experiment is fully determined by `(configuration, seed)`.
//! Child RNGs derived with [`SimRng::fork`] let subsystems own
//! independent streams whose draws do not interleave, which keeps results
//! stable when one subsystem changes how often it samples.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded, forkable random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream. The label decorrelates
    /// children forked from the same parent state.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s = self.inner.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(s)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform draw in `[0, 1)` that is never exactly 0 (safe for
    /// `ln(u)`).
    pub fn f64_open(&mut self) -> f64 {
        loop {
            let u = self.f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() over empty domain");
        self.inner.random_range(0..n)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniformly choose an element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// A raw 64-bit draw (used by forks and hashing helpers).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        for _ in 0..50 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        // Different labels from identical parent states diverge.
        let mut p3 = SimRng::seed_from_u64(7);
        let mut p4 = SimRng::seed_from_u64(7);
        let mut d1 = p3.fork(1);
        let mut d2 = p4.fork(2);
        let same = (0..64).filter(|_| d1.next_u64() == d2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_mean_is_reasonable() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.index(7);
            assert!(i < 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(6);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }
}
