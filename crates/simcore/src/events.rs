//! The deterministic event queue at the heart of the DES engine.

use crate::time::SimTime;

/// An entry in the queue: ordered by `(time, seq)` ascending, where `seq`
/// is a monotonically increasing insertion counter. The tiebreaker makes
/// simulation runs bit-for-bit reproducible even when many events share a
/// timestamp (common: scheduler passes, poll ticks).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The min-heap ordering key.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// A 4-ary min-heap over entries. Compared to the binary
/// `std::collections::BinaryHeap` this halves the tree depth, so a pop
/// touches ~half as many rows of the backing array — the dominant cost
/// at day-scale event counts (see the `engine/ping_chain_100k` and
/// `event_queue/push_pop_10k` probes in `BENCH_results.json`). The two
/// std tricks that make its binary heap fast are reproduced here for
/// arity 4: sifts move elements through a **hole** (one copy per level
/// instead of a three-copy swap), and pop sifts the displaced tail
/// element **down to a leaf first and then back up** (the element
/// almost always belongs near the bottom, so this near-halves the
/// comparisons of the classic compare-both-directions descent).
struct QuadHeap<E> {
    v: Vec<Entry<E>>,
}

/// A hole at `pos` in `data`: the element that lived there is held in
/// `elt`, and `move_to` fills the hole from another slot, re-opening it
/// there. On drop the held element is written back into the final hole
/// position, which keeps the heap a permutation of its elements even if
/// a key comparison panics (it cannot for `(SimTime, u64)`, but the
/// guard costs nothing).
struct Hole<'a, E> {
    data: &'a mut [Entry<E>],
    elt: std::mem::ManuallyDrop<Entry<E>>,
    pos: usize,
}

impl<'a, E> Hole<'a, E> {
    /// Safety: `pos` must be in bounds.
    unsafe fn new(data: &'a mut [Entry<E>], pos: usize) -> Self {
        debug_assert!(pos < data.len());
        let elt = std::ptr::read(data.get_unchecked(pos));
        Hole {
            data,
            elt: std::mem::ManuallyDrop::new(elt),
            pos,
        }
    }

    #[inline]
    fn key(&self) -> (SimTime, u64) {
        self.elt.key()
    }

    /// Safety: `i` must be in bounds and must not be the hole.
    #[inline]
    unsafe fn key_at(&self, i: usize) -> (SimTime, u64) {
        debug_assert!(i != self.pos && i < self.data.len());
        self.data.get_unchecked(i).key()
    }

    /// Safety: `i` must be in bounds and must not be the hole.
    #[inline]
    unsafe fn move_to(&mut self, i: usize) {
        debug_assert!(i != self.pos && i < self.data.len());
        let ptr = self.data.as_mut_ptr();
        std::ptr::copy_nonoverlapping(ptr.add(i), ptr.add(self.pos), 1);
        self.pos = i;
    }
}

impl<E> Drop for Hole<'_, E> {
    fn drop(&mut self) {
        // Fill the final hole with the held element.
        unsafe {
            let pos = self.pos;
            std::ptr::copy_nonoverlapping(&*self.elt, self.data.get_unchecked_mut(pos), 1);
        }
    }
}

impl<E> QuadHeap<E> {
    const ARITY: usize = 4;

    fn new() -> Self {
        QuadHeap { v: Vec::new() }
    }

    fn with_capacity(cap: usize) -> Self {
        QuadHeap {
            v: Vec::with_capacity(cap),
        }
    }

    fn push(&mut self, entry: Entry<E>) {
        self.v.push(entry);
        let pos = self.v.len() - 1;
        if pos > 0 {
            // Safety: pos is in bounds; the hole walks parent indices,
            // all < pos.
            unsafe {
                let mut hole = Hole::new(&mut self.v, pos);
                while hole.pos > 0 {
                    let parent = (hole.pos - 1) / Self::ARITY;
                    if hole.key() < hole.key_at(parent) {
                        hole.move_to(parent);
                    } else {
                        break;
                    }
                }
            }
        }
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        let mut item = self.v.pop()?;
        if let Some(root) = self.v.first_mut() {
            std::mem::swap(&mut item, root);
            self.sift_down_to_bottom(0);
        }
        Some(item)
    }

    /// Take the hole straight down along min-children to a leaf, then
    /// sift the displaced element back up from there.
    fn sift_down_to_bottom(&mut self, pos: usize) {
        let n = self.v.len();
        let start = pos;
        // Safety: every index handled to the hole is < n and never
        // equals the hole's own position.
        unsafe {
            let mut hole = Hole::new(&mut self.v, pos);
            loop {
                let first = hole.pos * Self::ARITY + 1;
                if first >= n {
                    break;
                }
                let last = (first + Self::ARITY).min(n);
                let mut best = first;
                let mut best_key = hole.key_at(first);
                for c in first + 1..last {
                    let k = hole.key_at(c);
                    if k < best_key {
                        best = c;
                        best_key = k;
                    }
                }
                hole.move_to(best);
            }
            // Back up towards `start` (exclusive).
            while hole.pos > start {
                let parent = (hole.pos - 1) / Self::ARITY;
                if parent < start || hole.key() >= hole.key_at(parent) {
                    break;
                }
                hole.move_to(parent);
            }
        }
    }

    /// Classic downward sift with early exit — used by [`QuadHeap::heapify`]
    /// (for pop, [`QuadHeap::sift_down_to_bottom`] is faster because the
    /// displaced tail element almost always belongs near a leaf).
    fn sift_down(&mut self, pos: usize) {
        let n = self.v.len();
        // Safety: every index handed to the hole is < n and never equals
        // the hole's own position.
        unsafe {
            let mut hole = Hole::new(&mut self.v, pos);
            loop {
                let first = hole.pos * Self::ARITY + 1;
                if first >= n {
                    break;
                }
                let last = (first + Self::ARITY).min(n);
                let mut best = first;
                let mut best_key = hole.key_at(first);
                for c in first + 1..last {
                    let k = hole.key_at(c);
                    if k < best_key {
                        best = c;
                        best_key = k;
                    }
                }
                if hole.key() <= best_key {
                    break;
                }
                hole.move_to(best);
            }
        }
    }

    /// Floyd's bottom-up heap construction: O(n) total instead of
    /// O(n log n) sift-up pushes. Safe to call on any permutation of the
    /// backing vector.
    fn heapify(&mut self) {
        let n = self.v.len();
        if n < 2 {
            return;
        }
        let last_parent = (n - 2) / Self::ARITY;
        for i in (0..=last_parent).rev() {
            self.sift_down(i);
        }
    }

    fn peek(&self) -> Option<&Entry<E>> {
        self.v.first()
    }

    fn len(&self) -> usize {
        self.v.len()
    }

    fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    fn clear(&mut self) {
        self.v.clear();
    }
}

/// A time-ordered, insertion-stable event queue.
///
/// ```
/// use hpcwhisk_simcore::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: QuadHeap<E>,
    /// Staging buffer for push *runs*: the first pushes after a pop go
    /// straight into the heap (the dispatch loop's one-push-per-pop
    /// steady state pays nothing), but a run that outlives the budget
    /// stages here and is merged in bulk at the next pop.
    pending: Vec<Entry<E>>,
    /// A bulk build absorbed as one descending-sorted segment: popping
    /// from its tail is O(1), so a push-then-drain burst costs one
    /// `sort_unstable` instead of n heap sifts + n heap pops. Only
    /// formed when the heap is (nearly) empty; steady-state dispatch
    /// never touches it.
    sorted: Vec<Entry<E>>,
    /// Pushes since the last pop (saturating at the direct-push budget).
    push_streak: u32,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Pushes per run that sift straight into the heap before staging
/// starts. Anything a dispatch handler fans out per event stays on the
/// direct path; a bootstrap burst or bulk rebuild overflows into the
/// staging buffer and gets one bulk merge (see
/// [`EventQueue::flush_pending`]).
const DIRECT_PUSH_BUDGET: u32 = 8;

/// Staged-run length at which a merge switches from per-entry sifts to
/// a bulk build (sort when it can become the sorted segment, Floyd
/// heapify otherwise).
const BULK_BUILD_MIN: usize = 64;

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: QuadHeap::new(),
            pending: Vec::new(),
            sorted: Vec::new(),
            push_streak: 0,
            seq: 0,
            popped: 0,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: QuadHeap::with_capacity(cap),
            pending: Vec::new(),
            sorted: Vec::new(),
            push_streak: 0,
            seq: 0,
            popped: 0,
        }
    }

    /// Schedule `event` at `time`. Events pushed for the same instant pop
    /// in push order.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { time, seq, event };
        // Short push runs sift directly (the dispatch loop's steady
        // state); once a run outlives the budget, stage the rest for a
        // bulk merge at the next pop.
        if self.push_streak < DIRECT_PUSH_BUDGET {
            self.push_streak += 1;
            self.heap.push(entry);
        } else {
            self.pending.push(entry);
        }
    }

    /// Merge staged pushes. The pop order is total by `(time, seq)`, so
    /// whether entries arrive by sift, heapify or sort is unobservable.
    #[inline]
    fn flush_pending(&mut self) {
        self.push_streak = 0;
        if self.pending.is_empty() {
            return;
        }
        if self.sorted.is_empty()
            && self.pending.len() >= BULK_BUILD_MIN
            && self.pending.len() >= 8 * self.heap.len()
        {
            // A bulk build from (nearly) scratch: absorb the few
            // direct-path entries, sort once descending, and drain from
            // the tail in O(1) per pop.
            self.pending.append(&mut self.heap.v);
            self.pending
                .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            std::mem::swap(&mut self.sorted, &mut self.pending);
        } else if self.pending.len() >= BULK_BUILD_MIN && self.pending.len() >= self.heap.len() {
            self.heap.v.append(&mut self.pending);
            self.heap.heapify();
        } else {
            for e in self.pending.drain(..) {
                self.heap.push(e);
            }
        }
    }

    /// Earliest entry across the sorted segment and the heap.
    #[inline]
    fn pop_entry(&mut self) -> Option<Entry<E>> {
        self.flush_pending();
        let from_sorted = match (self.sorted.last(), self.heap.peek()) {
            (Some(s), Some(h)) => s.key() <= h.key(),
            (Some(_), None) => true,
            (None, _) => false,
        };
        let e = if from_sorted {
            self.sorted.pop()
        } else {
            self.heap.pop()
        }?;
        self.popped += 1;
        Some(e)
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.pop_entry()?;
        Some((e.time, e.event))
    }

    /// Remove and return the earliest event together with its insertion
    /// sequence number, so it can be [`EventQueue::requeue`]d without
    /// losing its FIFO position among same-timestamp events. This is the
    /// engine's single-heap-access dispatch path: no separate peek.
    pub fn pop_with_seq(&mut self) -> Option<(SimTime, u64, E)> {
        let e = self.pop_entry()?;
        Some((e.time, e.seq, e.event))
    }

    /// Put back an event obtained from [`EventQueue::pop_with_seq`]
    /// under its original sequence number. The pop is also un-counted,
    /// so `total_popped` reflects only *processed* events.
    pub fn requeue(&mut self, time: SimTime, seq: u64, event: E) {
        debug_assert!(seq < self.seq, "requeue of a seq never handed out");
        self.popped -= 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        [
            self.heap.peek().map(|e| e.time),
            self.sorted.last().map(|e| e.time),
            self.pending.iter().map(|e| e.time).min(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.sorted.len() + self.pending.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.sorted.is_empty() && self.pending.is_empty()
    }

    /// Total number of events ever popped (the engine's step counter).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Total number of events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.seq
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.sorted.clear();
        self.push_streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_secs(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn time_ordering_dominates() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        q.pop();
        assert_eq!(q.total_popped(), 1);
        q.clear();
        assert!(q.is_empty());
        // Counters survive a clear.
        assert_eq!(q.total_pushed(), 2);
    }

    proptest! {
        /// Popping must always yield a non-decreasing time sequence, and
        /// for equal times the original insertion order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(*t), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((pt, pidx)) = prev {
                    prop_assert!(t >= pt);
                    if t == pt {
                        prop_assert!(idx > pidx);
                    }
                }
                prev = Some((t, idx));
            }
        }

        /// Interleaved push / pop-with-seq / requeue behaves exactly like
        /// a total sort by (time, seq) — the engine's horizon-requeue
        /// path must not perturb FIFO positions.
        #[test]
        fn prop_requeue_preserves_order(ops in proptest::collection::vec((0u64..50, any::<bool>()), 1..150)) {
            let mut q = EventQueue::new();
            let mut expected: Vec<(u64, usize)> = vec![];
            for (i, (t, requeue)) in ops.iter().enumerate() {
                q.push(SimTime::from_millis(*t), i);
                expected.push((*t, i));
                if *requeue {
                    // Pop the earliest and immediately put it back under
                    // its original seq: a no-op on the final order.
                    let (time, seq, ev) = q.pop_with_seq().unwrap();
                    q.requeue(time, seq, ev);
                }
            }
            expected.sort();
            let mut got = vec![];
            while let Some((t, ev)) = q.pop() {
                got.push((t.as_millis(), ev));
            }
            prop_assert_eq!(got, expected);
            prop_assert_eq!(q.total_popped() as usize, ops.len());
        }

        /// Interleaved push runs and pops across the bulk-heapify
        /// threshold: every pop must return exactly the (time, seq)
        /// minimum of what is queued at that instant — the Floyd rebuild
        /// path must be unobservable.
        #[test]
        fn prop_bulk_heapify_order_invariant(
            runs in proptest::collection::vec((proptest::collection::vec(0u64..200, 1..150), 0usize..80), 1..6)
        ) {
            let mut q = EventQueue::new();
            let mut model = std::collections::BTreeSet::new();
            let mut next_id = 0usize;
            for (times, pops) in runs {
                for t in times {
                    q.push(SimTime::from_millis(t), next_id);
                    model.insert((t, next_id));
                    next_id += 1;
                }
                for _ in 0..pops {
                    match q.pop() {
                        Some((t, id)) => {
                            let min = model.pop_first().unwrap();
                            prop_assert_eq!((t.as_millis(), id), min);
                        }
                        None => prop_assert!(model.is_empty()),
                    }
                }
            }
            while let Some((t, id)) = q.pop() {
                let min = model.pop_first().unwrap();
                prop_assert_eq!((t.as_millis(), id), min);
            }
            prop_assert!(model.is_empty());
        }

        /// The queue never loses or duplicates events.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..500, 0..100)) {
            let mut q = EventQueue::new();
            for t in &times {
                q.push(SimTime::from_millis(*t), *t);
            }
            let mut out = vec![];
            while let Some((_, e)) = q.pop() {
                out.push(e);
            }
            let mut expect = times.clone();
            expect.sort_unstable();
            out.sort_unstable();
            prop_assert_eq!(out, expect);
        }
    }
}
