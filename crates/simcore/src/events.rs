//! The deterministic event queue at the heart of the DES engine.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by `(time, seq)` ascending, where `seq`
/// is a monotonically increasing insertion counter. The tiebreaker makes
/// simulation runs bit-for-bit reproducible even when many events share a
/// timestamp (common: scheduler passes, poll ticks).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry is popped
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered, insertion-stable event queue.
///
/// ```
/// use hpcwhisk_simcore::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            popped: 0,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            popped: 0,
        }
    }

    /// Schedule `event` at `time`. Events pushed for the same instant pop
    /// in push order.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// Remove and return the earliest event together with its insertion
    /// sequence number, so it can be [`EventQueue::requeue`]d without
    /// losing its FIFO position among same-timestamp events. This is the
    /// engine's single-heap-access dispatch path: no separate peek.
    pub fn pop_with_seq(&mut self) -> Option<(SimTime, u64, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.seq, e.event))
    }

    /// Put back an event obtained from [`EventQueue::pop_with_seq`]
    /// under its original sequence number. The pop is also un-counted,
    /// so `total_popped` reflects only *processed* events.
    pub fn requeue(&mut self, time: SimTime, seq: u64, event: E) {
        debug_assert!(seq < self.seq, "requeue of a seq never handed out");
        self.popped -= 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever popped (the engine's step counter).
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Total number of events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.seq
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_secs(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn time_ordering_dominates() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        q.pop();
        assert_eq!(q.total_popped(), 1);
        q.clear();
        assert!(q.is_empty());
        // Counters survive a clear.
        assert_eq!(q.total_pushed(), 2);
    }

    proptest! {
        /// Popping must always yield a non-decreasing time sequence, and
        /// for equal times the original insertion order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(*t), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((pt, pidx)) = prev {
                    prop_assert!(t >= pt);
                    if t == pt {
                        prop_assert!(idx > pidx);
                    }
                }
                prev = Some((t, idx));
            }
        }

        /// The queue never loses or duplicates events.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..500, 0..100)) {
            let mut q = EventQueue::new();
            for t in &times {
                q.push(SimTime::from_millis(*t), *t);
            }
            let mut out = vec![];
            while let Some((_, e)) = q.pop() {
                out.push(e);
            }
            let mut expect = times.clone();
            expect.sort_unstable();
            out.sort_unstable();
            prop_assert_eq!(out, expect);
        }
    }
}
