//! # hpcwhisk-simcore
//!
//! Deterministic discrete-event simulation (DES) engine underpinning every
//! other crate in the HPC-Whisk reproduction.
//!
//! The engine is deliberately minimal and allocation-conscious:
//!
//! * [`SimTime`] / [`SimDuration`] — millisecond-resolution virtual time.
//! * [`EventQueue`] — a binary-heap priority queue with a monotonic
//!   sequence tiebreaker, so event ordering is fully deterministic even
//!   when many events share a timestamp.
//! * [`Engine`] — the driver loop. Systems implement [`Process`] and push
//!   follow-up events through an [`Outbox`].
//! * [`SimRng`] — a seeded small RNG; all stochastic behaviour flows
//!   through it so any experiment is reproducible from `(config, seed)`.
//! * [`dist`] — self-contained samplers (exponential, log-normal,
//!   Weibull, Pareto, mixtures, empirical) implemented with
//!   inverse-transform / Box–Muller so we do not need `rand_distr`.
//!
//! The design follows the "state machine + scheduler" DES pattern: each
//! subsystem (cluster, whisk, ...) is a plain state machine handling its
//! own event enum; a composition layer maps between subsystem outboxes
//! and the global queue. This keeps every subsystem unit-testable without
//! the engine.

pub mod dist;
pub mod engine;
pub mod events;
pub mod rng;
pub mod time;

pub use engine::{Engine, Outbox, Process, StopCondition};
pub use events::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
