//! Virtual time for the simulation: [`SimTime`] (an instant) and
//! [`SimDuration`] (a span), both with millisecond resolution.
//!
//! Millisecond resolution is sufficient for every phenomenon in the paper
//! (container cold starts ~500 ms, invoker poll intervals ~100 ms,
//! scheduler passes ~seconds, pilot jobs ~minutes) while `u64`
//! milliseconds comfortably spans centuries of simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of virtual time, in milliseconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw milliseconds since epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }
    /// Construct from whole seconds since epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }
    /// Construct from whole minutes since epoch.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }
    /// Construct from whole hours since epoch.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000)
    }
    /// Construct from fractional seconds since epoch, rounding to the
    /// nearest millisecond; negative inputs clamp to the epoch.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1_000.0).round().max(0.0) as u64)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }
    /// Seconds since the epoch (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    /// Minutes since the epoch (fractional).
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }
    /// Hours since the epoch (fractional).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Span from an earlier instant to `self`; saturates at zero if
    /// `earlier` is actually later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (stays at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span; used as a sentinel for "unbounded".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }
    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }
    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }
    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond; negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1_000.0).round() as u64)
    }
    /// Construct from fractional minutes (see [`Self::from_secs_f64`]).
    pub fn from_mins_f64(m: f64) -> Self {
        Self::from_secs_f64(m * 60.0)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }
    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    /// Fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }
    /// Whole minutes, truncating.
    pub const fn as_mins(self) -> u64 {
        self.0 / 60_000
    }
    /// True iff the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 = self.0.saturating_sub(other.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    /// Renders as `HH:MM:SS.mmm` of simulated wall time.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1_000;
        let s = (self.0 / 1_000) % 60;
        let m = (self.0 / 60_000) % 60;
        let h = self.0 / 3_600_000;
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3_600_000 {
            write!(f, "{:.2}h", self.as_secs_f64() / 3600.0)
        } else if self.0 >= 60_000 {
            write!(f, "{:.2}min", self.as_mins_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_mins(3).as_millis(), 180_000);
        assert_eq!(SimTime::from_hours(1).as_millis(), 3_600_000);
        assert_eq!(SimDuration::from_mins(90).as_mins(), 90);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(5), SimDuration::from_secs(10));
        // Saturating behaviour.
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(5),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn fractional_accessors() {
        let d = SimDuration::from_millis(90_000);
        assert!((d.as_mins_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_secs_f64() - 90.0).abs() < 1e-12);
        let t = SimTime::from_mins(90);
        assert!((t.as_hours_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps_and_rounds() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_millis(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(3_661_001).to_string(), "01:01:01.001");
        assert_eq!(SimDuration::from_secs(30).to_string(), "30.000s");
        assert_eq!(SimDuration::from_mins(5).to_string(), "5.00min");
    }

    #[test]
    fn since_and_saturating_add() {
        let a = SimTime::from_secs(4);
        let b = SimTime::from_secs(9);
        assert_eq!(b.since(a), SimDuration::from_secs(5));
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
