//! Graph representation and generators for the SeBS-style kernels.
//!
//! SeBS's `graph-bfs`, `graph-mst` and `graph-pagerank` benchmarks run
//! igraph algorithms on Barabási–Albert graphs; we implement the same
//! preferential-attachment generator and a CSR adjacency structure.

use simcore::SimRng;

/// A compact undirected graph in CSR form, with optional edge weights.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Vertex count.
    pub n: usize,
    /// CSR row offsets (length n+1).
    pub offsets: Vec<u32>,
    /// Flattened adjacency lists (each undirected edge appears twice).
    pub adj: Vec<u32>,
    /// Unique undirected edges as (u, v, weight), u < v.
    pub edges: Vec<(u32, u32, f32)>,
}

impl Graph {
    /// Build from an undirected edge list (deduplicated by caller).
    pub fn from_edges(n: usize, edges: Vec<(u32, u32, f32)>) -> Self {
        let mut deg = vec![0u32; n];
        for (u, v, _) in &edges {
            assert!((*u as usize) < n && (*v as usize) < n && u != v);
            deg[*u as usize] += 1;
            deg[*v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        let mut adj = vec![0u32; offsets[n] as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (u, v, _) in &edges {
            adj[cursor[*u as usize] as usize] = *v;
            cursor[*u as usize] += 1;
            adj[cursor[*v as usize] as usize] = *u;
            cursor[*v as usize] += 1;
        }
        Graph {
            n,
            offsets,
            adj,
            edges,
        }
    }

    /// Neighbours of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Number of unique undirected edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Barabási–Albert preferential attachment: each new vertex attaches
    /// `m` edges to existing vertices with probability proportional to
    /// their degree (the classic repeated-endpoints trick). Weights are
    /// uniform in (0, 1) — the MST kernel needs them.
    pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Self {
        assert!(n > m && m >= 1);
        let mut rng = SimRng::seed_from_u64(seed ^ 0xBA);
        // Seed clique of m+1 vertices.
        let mut edges: Vec<(u32, u32, f32)> = Vec::with_capacity(n * m);
        let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
        for u in 0..=(m as u32) {
            for v in 0..u {
                edges.push((v, u, rng.f64() as f32));
                endpoints.push(u);
                endpoints.push(v);
            }
        }
        for u in (m as u32 + 1)..(n as u32) {
            let mut targets: Vec<u32> = Vec::with_capacity(m);
            while targets.len() < m {
                let t = *rng.choose(&endpoints);
                if t != u && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for &t in &targets {
                let (a, b) = if t < u { (t, u) } else { (u, t) };
                edges.push((a, b, rng.f64() as f32));
                endpoints.push(u);
                endpoints.push(t);
            }
        }
        Graph::from_edges(n, edges)
    }

    /// Uniform random connected graph: a random spanning tree plus
    /// `extra` random edges (used by property tests).
    pub fn random_connected(n: usize, extra: usize, seed: u64) -> Self {
        assert!(n >= 2);
        let mut rng = SimRng::seed_from_u64(seed ^ 0x6A);
        let mut edges: Vec<(u32, u32, f32)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for v in 1..n as u32 {
            let u = rng.range_u64(0, v as u64) as u32;
            edges.push((u, v, rng.f64() as f32));
            seen.insert((u, v));
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < extra && attempts < extra * 20 {
            attempts += 1;
            let a = rng.index(n) as u32;
            let b = rng.index(n) as u32;
            if a == b {
                continue;
            }
            let (u, v) = if a < b { (a, b) } else { (b, a) };
            if seen.insert((u, v)) {
                edges.push((u, v, rng.f64() as f32));
                added += 1;
            }
        }
        Graph::from_edges(n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let g = Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (0, 3, 1.0)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 1);
        let mut n0: Vec<u32> = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 3]);
        assert_eq!(g.n_edges(), 3);
    }

    #[test]
    fn ba_graph_shape() {
        let g = Graph::barabasi_albert(2_000, 3, 1);
        assert_eq!(g.n, 2_000);
        // m edges per new vertex + seed clique.
        let expected = (2_000 - 4) * 3 + 6;
        assert_eq!(g.n_edges(), expected);
        // Preferential attachment yields a heavy-tailed degree
        // distribution: max degree far above the mean.
        let mean_deg = 2.0 * g.n_edges() as f64 / g.n as f64;
        let max_deg = (0..g.n as u32).map(|v| g.degree(v)).max().unwrap();
        assert!(
            max_deg as f64 > 5.0 * mean_deg,
            "max {max_deg} vs mean {mean_deg}"
        );
    }

    #[test]
    fn ba_graph_is_connected() {
        let g = Graph::barabasi_albert(500, 2, 2);
        // BFS from 0 reaches everything (attachment guarantees it).
        let mut seen = vec![false; g.n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        assert_eq!(count, g.n);
    }

    #[test]
    fn deterministic_generation() {
        let a = Graph::barabasi_albert(300, 2, 9);
        let b = Graph::barabasi_albert(300, 2, 9);
        assert_eq!(a.edges, b.edges);
        let c = Graph::barabasi_albert(300, 2, 10);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn random_connected_is_connected() {
        let g = Graph::random_connected(100, 50, 3);
        assert!(g.n_edges() >= 99);
        let mut seen = vec![false; g.n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        assert_eq!(count, 100);
    }
}
