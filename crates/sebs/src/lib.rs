//! # hpcwhisk-sebs
//!
//! The compute-intensive subset of the SeBS serverless benchmark suite
//! used by the paper's Fig. 7 (§V-D): **bfs**, **mst** and **pagerank**
//! on Barabási–Albert graphs — implemented for real, so the benchmark
//! harness measures genuine CPU work — plus calibrated platform models
//! (Prometheus node vs. AWS Lambda at various memory sizes).

pub mod graph;
pub mod kernels;
pub mod platform;
pub mod runner;

pub use graph::Graph;
pub use kernels::{bfs, mst, pagerank, pagerank_par};
pub use platform::{PlatformModel, LAMBDA_BASE_FACTOR, LAMBDA_FULL_VCPU_MB};
pub use runner::{measure, Kernel, Measurement};
