//! Platform models for the Fig. 7 comparison.
//!
//! The paper runs the three kernels on a Prometheus node and on AWS
//! Lambda with 2048 MB (its fastest configuration) and finds a
//! *consistent ~15% advantage for the HPC node*, explained by
//! compute-optimized hardware. We cannot call AWS from here, so Lambda
//! is a calibrated slowdown model: per-invocation compute takes
//! `reference_time × speed_factor`. Lambda's CPU share scales with
//! configured memory (full vCPU at ~1792 MB), which gives the
//! lower-memory variants used in the memory-sweep ablation.

/// A compute platform for the kernel benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformModel {
    /// Display name.
    pub name: String,
    /// Execution time multiplier relative to a Prometheus node (1.0).
    pub speed_factor: f64,
}

/// Memory (MB) at which Lambda grants a full vCPU.
pub const LAMBDA_FULL_VCPU_MB: u32 = 1_792;

/// Calibrated Lambda-2048 slowdown vs. a Prometheus node (paper §V-D:
/// all three kernels complete ~15% faster on Prometheus).
pub const LAMBDA_BASE_FACTOR: f64 = 1.15;

impl PlatformModel {
    /// The reference: one core of a Prometheus node (2× Xeon E5-2680v3).
    pub fn prometheus_node() -> Self {
        PlatformModel {
            name: "Prometheus node".to_string(),
            speed_factor: 1.0,
        }
    }

    /// AWS Lambda with the given memory configuration. At or above
    /// [`LAMBDA_FULL_VCPU_MB`] the function owns a full vCPU and runs at
    /// the calibrated base factor; below, the CPU share (and so the
    /// speed) scales linearly with memory.
    pub fn aws_lambda(memory_mb: u32) -> Self {
        assert!(memory_mb >= 128, "Lambda minimum memory");
        let share = (memory_mb as f64 / LAMBDA_FULL_VCPU_MB as f64).min(1.0);
        PlatformModel {
            name: format!("AWS Lambda {memory_mb}MB"),
            speed_factor: LAMBDA_BASE_FACTOR / share,
        }
    }

    /// The paper's comparison configuration.
    pub fn aws_lambda_2048() -> Self {
        Self::aws_lambda(2_048)
    }

    /// Model the platform's execution time for work that takes
    /// `reference_secs` on the reference node.
    pub fn execution_secs(&self, reference_secs: f64) -> f64 {
        reference_secs * self.speed_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_is_reference() {
        let p = PlatformModel::prometheus_node();
        assert_eq!(p.speed_factor, 1.0);
        assert_eq!(p.execution_secs(2.0), 2.0);
    }

    #[test]
    fn lambda_2048_is_about_15_percent_slower() {
        let l = PlatformModel::aws_lambda_2048();
        assert!((l.speed_factor - LAMBDA_BASE_FACTOR).abs() < 1e-12);
        let gain = 1.0 - 1.0 / l.speed_factor;
        assert!((0.10..=0.18).contains(&gain), "paper reports ~15%: {gain}");
    }

    #[test]
    fn lambda_speed_scales_with_memory() {
        let full = PlatformModel::aws_lambda(1_792);
        let half = PlatformModel::aws_lambda(896);
        let quarter = PlatformModel::aws_lambda(448);
        assert!((half.speed_factor / full.speed_factor - 2.0).abs() < 1e-9);
        assert!((quarter.speed_factor / full.speed_factor - 4.0).abs() < 1e-9);
        // Above the full-vCPU point, more memory does not speed compute.
        let big = PlatformModel::aws_lambda(3_008);
        assert_eq!(
            big.speed_factor,
            PlatformModel::aws_lambda(2_048).speed_factor
        );
    }

    #[test]
    #[should_panic]
    fn lambda_rejects_tiny_memory() {
        PlatformModel::aws_lambda(64);
    }
}
