//! The three compute-intensive SeBS kernels the paper benchmarks
//! (§V-D): breadth-first search, minimum spanning tree and PageRank.
//! These run for real — Fig. 7's comparison measures genuine CPU work.

use crate::graph::Graph;
use rayon::prelude::*;

/// BFS from `source`: returns `(levels, visited_count)`; unreachable
/// vertices get `u32::MAX`.
pub fn bfs(g: &Graph, source: u32) -> (Vec<u32>, usize) {
    let mut level = vec![u32::MAX; g.n];
    let mut frontier = vec![source];
    level[source as usize] = 0;
    let mut visited = 1usize;
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for v in frontier {
            for &w in g.neighbors(v) {
                if level[w as usize] == u32::MAX {
                    level[w as usize] = depth;
                    visited += 1;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    (level, visited)
}

/// Disjoint-set union with path halving and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }
}

/// Kruskal MST: returns `(total_weight, edges_in_tree)`. On a connected
/// graph the tree has `n - 1` edges.
pub fn mst(g: &Graph) -> (f64, usize) {
    let mut order: Vec<u32> = (0..g.edges.len() as u32).collect();
    order.sort_unstable_by(|a, b| {
        g.edges[*a as usize]
            .2
            .partial_cmp(&g.edges[*b as usize].2)
            .expect("weights are finite")
            .then(a.cmp(b))
    });
    let mut uf = UnionFind::new(g.n);
    let mut total = 0.0f64;
    let mut count = 0usize;
    for ei in order {
        let (u, v, w) = g.edges[ei as usize];
        if uf.union(u, v) {
            total += w as f64;
            count += 1;
            if count == g.n - 1 {
                break;
            }
        }
    }
    (total, count)
}

/// PageRank by power iteration (damping 0.85) until the L1 change drops
/// below `tol` or `max_iters` is hit. Returns `(ranks, iterations)`.
pub fn pagerank(g: &Graph, tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
    pagerank_impl(g, tol, max_iters, false)
}

/// Rayon-parallel PageRank; identical result up to floating-point
/// reduction order.
pub fn pagerank_par(g: &Graph, tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
    pagerank_impl(g, tol, max_iters, true)
}

fn pagerank_impl(g: &Graph, tol: f64, max_iters: usize, parallel: bool) -> (Vec<f64>, usize) {
    const D: f64 = 0.85;
    let n = g.n;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let inv_deg: Vec<f64> = (0..n as u32)
        .map(|v| {
            let d = g.degree(v);
            if d > 0 {
                1.0 / d as f64
            } else {
                0.0
            }
        })
        .collect();
    for it in 1..=max_iters {
        // Dangling mass (degree-0 vertices) redistributes uniformly.
        let dangling: f64 = (0..n)
            .filter(|v| g.degree(*v as u32) == 0)
            .map(|v| rank[v])
            .sum();
        let base = (1.0 - D) / n as f64 + D * dangling / n as f64;
        let compute = |v: usize| -> f64 {
            let mut sum = 0.0;
            for &w in g.neighbors(v as u32) {
                sum += rank[w as usize] * inv_deg[w as usize];
            }
            base + D * sum
        };
        if parallel {
            next.par_iter_mut()
                .enumerate()
                .for_each(|(v, slot)| *slot = compute(v));
        } else {
            for (v, slot) in next.iter_mut().enumerate() {
                *slot = compute(v);
            }
        }
        let delta: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < tol {
            return (rank, it);
        }
    }
    (rank, max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bfs_levels_on_path_graph() {
        // 0 - 1 - 2 - 3
        let g = Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let (levels, visited) = bfs(&g, 0);
        assert_eq!(levels, vec![0, 1, 2, 3]);
        assert_eq!(visited, 4);
        let (levels, _) = bfs(&g, 2);
        assert_eq!(levels, vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let g = Graph::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]);
        let (levels, visited) = bfs(&g, 0);
        assert_eq!(visited, 2);
        assert_eq!(levels[2], u32::MAX);
        assert_eq!(levels[3], u32::MAX);
    }

    #[test]
    fn mst_known_graph() {
        // Square with diagonal: MST picks the three lightest edges that
        // do not close a cycle.
        let g = Graph::from_edges(
            4,
            vec![
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (0, 3, 4.0),
                (0, 2, 5.0),
            ],
        );
        let (w, count) = mst(&g);
        assert_eq!(count, 3);
        assert!((w - 6.0).abs() < 1e-9);
    }

    #[test]
    fn mst_spans_connected_graph() {
        let g = Graph::barabasi_albert(500, 3, 4);
        let (w, count) = mst(&g);
        assert_eq!(count, 499);
        assert!(w > 0.0);
    }

    /// Prim's algorithm as an independent oracle.
    fn prim_weight(g: &Graph) -> f64 {
        let mut in_tree = vec![false; g.n];
        let mut best = vec![f64::INFINITY; g.n];
        best[0] = 0.0;
        let mut total = 0.0;
        for _ in 0..g.n {
            let mut v = usize::MAX;
            let mut vb = f64::INFINITY;
            for u in 0..g.n {
                if !in_tree[u] && best[u] < vb {
                    vb = best[u];
                    v = u;
                }
            }
            if v == usize::MAX {
                break; // disconnected remainder
            }
            in_tree[v] = true;
            total += vb;
            for (u, w, wt) in g.edges.iter().map(|(a, b, w)| (*a, *b, *w)) {
                let (a, b) = (u as usize, w as usize);
                if a == v && !in_tree[b] {
                    best[b] = best[b].min(wt as f64);
                } else if b == v && !in_tree[a] {
                    best[a] = best[a].min(wt as f64);
                }
            }
        }
        total
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Kruskal and Prim agree on random connected graphs.
        #[test]
        fn prop_mst_matches_prim(n in 3usize..40, extra in 0usize..60, seed in 0u64..500) {
            let g = Graph::random_connected(n, extra, seed);
            let (kw, count) = mst(&g);
            prop_assert_eq!(count, n - 1);
            let pw = prim_weight(&g);
            prop_assert!((kw - pw).abs() < 1e-6, "kruskal {} vs prim {}", kw, pw);
        }

        /// BFS levels change by at most 1 across any edge.
        #[test]
        fn prop_bfs_lipschitz(n in 3usize..40, extra in 0usize..60, seed in 0u64..500) {
            let g = Graph::random_connected(n, extra, seed);
            let (levels, visited) = bfs(&g, 0);
            prop_assert_eq!(visited, n);
            for (u, v, _) in &g.edges {
                let a = levels[*u as usize] as i64;
                let b = levels[*v as usize] as i64;
                prop_assert!((a - b).abs() <= 1);
            }
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_converges() {
        let g = Graph::barabasi_albert(1_000, 3, 5);
        let (ranks, iters) = pagerank(&g, 1e-9, 200);
        assert!(iters < 200, "should converge, took {iters}");
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
        assert!(ranks.iter().all(|r| *r > 0.0));
    }

    #[test]
    fn pagerank_ranks_hub_highest_on_star() {
        // Star: vertex 0 is the hub.
        let edges = (1..20u32).map(|v| (0, v, 1.0)).collect();
        let g = Graph::from_edges(20, edges);
        let (ranks, _) = pagerank(&g, 1e-10, 500);
        let hub = ranks[0];
        assert!(ranks[1..].iter().all(|r| *r < hub));
    }

    #[test]
    fn pagerank_parallel_matches_sequential() {
        let g = Graph::barabasi_albert(2_000, 3, 6);
        let (a, _) = pagerank(&g, 1e-10, 300);
        let (b, _) = pagerank_par(&g, 1e-10, 300);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_handles_isolated_vertices() {
        // Vertex 3 is isolated: dangling mass redistributes, the sum
        // stays 1.
        let g = Graph::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let (ranks, _) = pagerank(&g, 1e-10, 500);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(ranks[3] > 0.0);
    }
}
