//! Benchmark runner: measures the kernels for real and projects the
//! measurements onto platform models (Fig. 7).

use crate::graph::Graph;
use crate::kernels::{bfs, mst, pagerank};
use crate::platform::PlatformModel;
use std::time::Instant;

/// Which SeBS kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Breadth-first search from vertex 0.
    Bfs,
    /// Kruskal minimum spanning tree.
    Mst,
    /// PageRank power iteration.
    Pagerank,
}

impl Kernel {
    /// All three, in the paper's Fig. 7 order.
    pub const ALL: [Kernel; 3] = [Kernel::Bfs, Kernel::Mst, Kernel::Pagerank];

    /// SeBS benchmark name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Bfs => "bfs",
            Kernel::Mst => "mst",
            Kernel::Pagerank => "pagerank",
        }
    }

    /// Execute once; returns a checksum-ish value so the optimizer
    /// cannot elide the work.
    pub fn run(&self, g: &Graph) -> f64 {
        match self {
            Kernel::Bfs => {
                let (levels, visited) = bfs(g, 0);
                visited as f64 + levels.iter().filter(|l| **l != u32::MAX).sum::<u32>() as f64
            }
            Kernel::Mst => {
                let (w, count) = mst(g);
                w + count as f64
            }
            Kernel::Pagerank => {
                let (ranks, iters) = pagerank(g, 1e-8, 100);
                ranks[0] + iters as f64
            }
        }
    }
}

/// Summary of repeated measurements (seconds).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The kernel.
    pub kernel: Kernel,
    /// Per-repetition wall times, sorted ascending.
    pub times_secs: Vec<f64>,
    /// Anti-elision checksum.
    pub checksum: f64,
}

impl Measurement {
    /// Median wall time.
    pub fn median_secs(&self) -> f64 {
        self.times_secs[self.times_secs.len() / 2]
    }

    /// Mean wall time.
    pub fn mean_secs(&self) -> f64 {
        self.times_secs.iter().sum::<f64>() / self.times_secs.len() as f64
    }

    /// Project the median onto a platform model.
    pub fn on_platform(&self, p: &PlatformModel) -> f64 {
        p.execution_secs(self.median_secs())
    }
}

/// Run `kernel` on `g`, `reps` times after `warmup` discarded runs —
/// the paper's "warm performance" methodology (200 invocations, cold
/// starts excluded, §V-D).
pub fn measure(kernel: Kernel, g: &Graph, warmup: usize, reps: usize) -> Measurement {
    assert!(reps >= 1);
    let mut checksum = 0.0;
    for _ in 0..warmup {
        checksum += kernel.run(g);
    }
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        checksum += kernel.run(g);
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    Measurement {
        kernel,
        times_secs: times,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_shapes() {
        let g = Graph::barabasi_albert(2_000, 3, 11);
        let m = measure(Kernel::Bfs, &g, 1, 5);
        assert_eq!(m.times_secs.len(), 5);
        assert!(m.median_secs() >= 0.0);
        assert!(m.checksum > 0.0);
        // Sorted ascending.
        for w in m.times_secs.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn all_kernels_produce_nonzero_work() {
        let g = Graph::barabasi_albert(1_000, 3, 12);
        for k in Kernel::ALL {
            assert!(k.run(&g) > 0.0, "{} returned 0", k.name());
        }
    }

    #[test]
    fn platform_projection_ordering() {
        let g = Graph::barabasi_albert(1_000, 3, 13);
        let m = measure(Kernel::Pagerank, &g, 0, 3);
        let prom = m.on_platform(&PlatformModel::prometheus_node());
        let lambda = m.on_platform(&PlatformModel::aws_lambda_2048());
        assert!(lambda > prom, "Lambda must be slower than the HPC node");
        assert!((lambda / prom - 1.15).abs() < 1e-9);
    }
}
