//! # hpcwhisk-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index), plus shared
//! reporting utilities. Each binary prints the paper-shaped artifact
//! followed by a paper-vs-measured comparison table.
//!
//! Binaries accept `--quick` to run a scaled-down configuration (fewer
//! nodes / shorter horizon) for smoke testing.

use metrics::Table;

/// A paper-vs-measured comparison accumulator.
#[derive(Debug, Default)]
pub struct Comparison {
    rows: Vec<(String, String, String)>,
}

impl Comparison {
    /// Empty comparison.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a numeric row; the rendering includes the measured/paper
    /// ratio so shape deviations are visible at a glance.
    pub fn add(&mut self, label: &str, paper: f64, measured: f64) -> &mut Self {
        let ratio = if paper.abs() > 1e-12 {
            format!("{:.2}", measured / paper)
        } else {
            "-".to_string()
        };
        self.rows.push((
            label.to_string(),
            format!("{paper:.2}"),
            format!("{measured:.2} (x{ratio})"),
        ));
        self
    }

    /// Add a free-form row.
    pub fn add_str(&mut self, label: &str, paper: &str, measured: &str) -> &mut Self {
        self.rows
            .push((label.to_string(), paper.to_string(), measured.to_string()));
        self
    }

    /// Render the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["Metric", "Paper", "Measured"]);
        for (l, p, m) in &self.rows {
            t.row(&[l.clone(), p.clone(), m.clone()]);
        }
        t.render()
    }
}

/// True if `--quick` was passed (scaled-down smoke run).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Value following `--flag` on the command line, if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Honor `--metrics-out <path>`: scrape the gateway's telemetry
/// registry and write the Prometheus text exposition to the path.
/// No-op when the flag is absent; call before `shutdown` teardown while
/// the gateway still owns its registry.
pub fn write_metrics_out(gw: &gateway::Gateway) {
    let Some(path) = arg_value("--metrics-out") else {
        return;
    };
    let Some(telem) = gw.telemetry() else {
        eprintln!("--metrics-out: gateway telemetry is disabled; nothing to write");
        return;
    };
    let text = metrics::telemetry::render_prometheus(&telem.registry().snapshot());
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("--metrics-out {path}: {e}"));
    println!("metrics exposition written to {path}");
}

/// Honor `--metrics-out <path>` for scheduler-plane binaries: render
/// the pass counters as a Prometheus exposition (see
/// [`scheduler_exposition`]) and write it to the path.
pub fn write_scheduler_metrics_out(c: &cluster::Counters) {
    let Some(path) = arg_value("--metrics-out") else {
        return;
    };
    std::fs::write(&path, scheduler_exposition(c))
        .unwrap_or_else(|e| panic!("--metrics-out {path}: {e}"));
    println!("metrics exposition written to {path}");
}

/// Render `cluster::Counters` as Prometheus text through a one-shot
/// telemetry registry — the scheduler plane's equivalent of scraping
/// the gateway's live registry. Span families read zero unless the run
/// called `ClusterSim::enable_pass_spans`.
pub fn scheduler_exposition(c: &cluster::Counters) -> String {
    use metrics::telemetry::{labels, render_prometheus, Collected, Labels, MetricKind, Registry};
    let reg = Registry::new();
    let counter = |name: &str, help: &str, rows: Vec<(Labels, u64)>| {
        let collect = move || {
            rows.iter()
                .map(|(l, v)| (l.clone(), Collected::Counter(*v)))
                .collect::<Vec<_>>()
        };
        reg.register(name, help, MetricKind::Counter, Box::new(collect));
    };
    counter(
        "scheduler_passes_total",
        "scheduling passes by mode (epoch-skipped quick passes split out)",
        vec![
            (labels(&[("mode", "quick")]), c.quick_passes),
            (labels(&[("mode", "quick_skipped")]), c.quick_passes_skipped),
            (labels(&[("mode", "backfill")]), c.backfill_passes),
        ],
    );
    counter(
        "scheduler_jobs_total",
        "job lifecycle events by kind",
        vec![
            (
                labels(&[("kind", "hpc"), ("event", "started")]),
                c.hpc_started,
            ),
            (
                labels(&[("kind", "hpc"), ("event", "completed")]),
                c.hpc_completed,
            ),
            (
                labels(&[("kind", "pilot"), ("event", "started")]),
                c.pilots_started,
            ),
            (
                labels(&[("kind", "pilot"), ("event", "preempted")]),
                c.pilots_preempted,
            ),
            (
                labels(&[("kind", "pilot"), ("event", "timed_out")]),
                c.pilots_timed_out,
            ),
            (
                labels(&[("kind", "pilot"), ("event", "node_failed")]),
                c.pilots_node_failed,
            ),
        ],
    );
    counter(
        "scheduler_reservations_total",
        "future-start reservations created",
        vec![(labels(&[]), c.reservations_made)],
    );
    counter(
        "scheduler_pass_placements_total",
        "starts plus reservations made by passes",
        vec![(labels(&[]), c.pass_placements)],
    );
    counter(
        "scheduler_wheel_nodes_reprojected_total",
        "nodes re-masked by the residue-wheel sweep (crossing-proportional witness)",
        vec![(labels(&[]), c.wheel_nodes_reprojected)],
    );
    counter(
        "scheduler_pass_span_ns_total",
        "per-phase pass wall-clock, when pass spans are enabled",
        vec![
            (labels(&[("phase", "rebase")]), c.span_rebase_ns),
            (labels(&[("phase", "wheel")]), c.span_wheel_ns),
            (labels(&[("phase", "dirty")]), c.span_dirty_ns),
            (labels(&[("phase", "placement")]), c.span_placement_ns),
        ],
    );
    render_prometheus(&reg.snapshot())
}

/// Print a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_renders_ratio() {
        let mut c = Comparison::new();
        c.add("coverage %", 90.0, 87.3);
        c.add_str("who wins", "fib", "fib");
        let s = c.render();
        assert!(s.contains("coverage %"));
        assert!(s.contains("87.30 (x0.97)"));
        assert!(s.contains("fib"));
    }

    #[test]
    fn comparison_handles_zero_paper_value() {
        let mut c = Comparison::new();
        c.add("zero", 0.0, 1.0);
        assert!(c.render().contains("-"));
    }
}
