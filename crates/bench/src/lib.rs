//! # hpcwhisk-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index), plus shared
//! reporting utilities. Each binary prints the paper-shaped artifact
//! followed by a paper-vs-measured comparison table.
//!
//! Binaries accept `--quick` to run a scaled-down configuration (fewer
//! nodes / shorter horizon) for smoke testing.

use metrics::Table;

/// A paper-vs-measured comparison accumulator.
#[derive(Debug, Default)]
pub struct Comparison {
    rows: Vec<(String, String, String)>,
}

impl Comparison {
    /// Empty comparison.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a numeric row; the rendering includes the measured/paper
    /// ratio so shape deviations are visible at a glance.
    pub fn add(&mut self, label: &str, paper: f64, measured: f64) -> &mut Self {
        let ratio = if paper.abs() > 1e-12 {
            format!("{:.2}", measured / paper)
        } else {
            "-".to_string()
        };
        self.rows.push((
            label.to_string(),
            format!("{paper:.2}"),
            format!("{measured:.2} (x{ratio})"),
        ));
        self
    }

    /// Add a free-form row.
    pub fn add_str(&mut self, label: &str, paper: &str, measured: &str) -> &mut Self {
        self.rows
            .push((label.to_string(), paper.to_string(), measured.to_string()));
        self
    }

    /// Render the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["Metric", "Paper", "Measured"]);
        for (l, p, m) in &self.rows {
            t.row(&[l.clone(), p.clone(), m.clone()]);
        }
        t.render()
    }
}

/// True if `--quick` was passed (scaled-down smoke run).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Print a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_renders_ratio() {
        let mut c = Comparison::new();
        c.add("coverage %", 90.0, 87.3);
        c.add_str("who wins", "fib", "fib");
        let s = c.render();
        assert!(s.contains("coverage %"));
        assert!(s.contains("87.30 (x0.97)"));
        assert!(s.contains("fib"));
    }

    #[test]
    fn comparison_handles_zero_paper_value() {
        let mut c = Comparison::new();
        c.add("zero", 0.0, 1.0);
        assert!(c.render().contains("-"));
    }
}
