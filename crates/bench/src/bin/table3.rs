//! Table III + Fig. 6 (§V-B2, §V-C): the var-model experiment day.
//!
//! Same harness as `table2`, but pilots are variable-length jobs
//! (`--time-min 2 --time 120`) whose duration Slurm decides at
//! placement. Extension is a backfill-pass computation with a bounded
//! per-pass budget, so the achieved coverage falls well short of the
//! clairvoyant bound — the paper's central var-model finding (68%
//! achieved vs 84% simulated).

use hpcwhisk_bench::{quick_mode, section, Comparison};
use hpcwhisk_core::{lengths, report, run_day, DayConfig};
use metrics::Cdf;
use simcore::SimDuration;
use workload::IdleModel;

static TRACE_AVG: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
fn trace_avg() -> f64 {
    *TRACE_AVG.get().unwrap_or(&f64::NAN)
}

fn main() {
    let quick = quick_mode();
    let (hours, model) = if quick {
        let mut m = IdleModel::var_day();
        m.n_nodes = 200;
        m.target_avg_idle = 5.0;
        (3, m)
    } else {
        (24, IdleModel::var_day())
    };
    let seed = IdleModel::VAR_DAY_SEED;
    let trace = model.generate(SimDuration::from_hours(hours), seed);
    eprintln!(
        "generated var-day trace: {} nodes, {} gaps, {:.0} node-min available",
        trace.n_nodes(),
        trace.n_intervals(),
        trace.total_available().as_mins_f64()
    );

    {
        let s = trace.count_series();
        let _ = TRACE_AVG.set(s.time_avg(trace.start, trace.end));
    }
    let cfg = DayConfig::var_paper(seed);
    let mut rep = run_day(&trace, cfg);

    section("Table III: var job manager");
    // The paper's var-model clairvoyant bound uses the C2 length set.
    let sim = rep.simulation(lengths::c2());
    let slurm = rep.slurm_level();
    let ow = rep.ow_level();
    println!(
        "{}",
        report::render_day_table("(var day)", &sim, &slurm, &ow)
    );

    section("Fig 6a: workers and idle nodes over time (hourly averages)");
    let (from, to) = rep.window;
    println!("hour | healthy workers | idle nodes");
    let mut t = from;
    while t < to {
        let t2 = {
            let n = t + SimDuration::from_hours(1);
            if n < to {
                n
            } else {
                to
            }
        };
        println!(
            "{:>4} | {:>15.2} | {:>10.2}",
            t.as_hours_f64() as u64,
            rep.healthy_series.time_avg(t, t2),
            rep.idle_series.time_avg(t, t2),
        );
        t = t2;
    }

    section("Fig 6b: request outcomes over time (hourly sums)");
    println!("hour | success | failed | lost(timeout) | 503");
    let n_hours = ((to - from).as_mins() as usize).div_ceil(60);
    for h in 0..n_hours {
        let range = h * 60..((h + 1) * 60).min(rep.success_bins.counts().len());
        let s: u64 = rep.success_bins.counts()[range.clone()].iter().sum();
        let f: u64 = rep.failed_bins.counts()[range.clone()].iter().sum();
        let l: u64 = rep.timeout_bins.counts()[range.clone()].iter().sum();
        let r: u64 = rep.rejected_bins.counts()[range].iter().sum();
        println!("{h:>4} | {s:>7} | {f:>6} | {l:>13} | {r:>4}");
    }

    section("Fig 6c: node-count CDFs (Slurm-level)");
    let mut idle = Cdf::new();
    let mut pilot = Cdf::new();
    let mut avail = Cdf::new();
    for s in &rep.samples {
        idle.add(s.n_idle() as f64);
        pilot.add(s.n_pilot() as f64);
        avail.add((s.n_idle() + s.n_pilot()) as f64);
    }
    println!("percentile | idle | OpenWhisk (pilot) | originally-idle");
    for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        println!(
            "{:>10} | {:>4} | {:>17} | {:>15}",
            format!("{:.0}%", p * 100.0),
            idle.quantile(p),
            pilot.quantile(p),
            avail.quantile(p)
        );
    }

    section("Responsiveness summary (§V-C)");
    let acc = rep.acceptance_rate();
    let (succ, fail, to_share) = rep.accepted_outcome_shares();
    let med_rt = if rep.latency_success_secs.is_empty() {
        f64::NAN
    } else {
        rep.latency_success_secs.median()
    };
    println!(
        "accepted: {:.2}%   of accepted: success {:.2}%, failed {:.2}%, timeout {:.2}%",
        acc * 100.0,
        succ * 100.0,
        fail * 100.0,
        to_share * 100.0
    );
    println!(
        "median response time of successes: {:.0} ms",
        med_rt * 1000.0
    );

    section("Diagnostics");
    let cc = &rep.cluster_counters;
    println!(
        "pilots started={} preempted={} timed_out={} granted mins avg={:.1}",
        cc.pilots_started,
        cc.pilots_preempted,
        cc.pilots_timed_out,
        cc.pilot_granted_mins.mean()
    );
    println!(
        "demand delay: n={} mean={:.1}s max={:.1}s",
        cc.demand_delay_secs.count(),
        cc.demand_delay_secs.mean(),
        cc.demand_delay_secs.max().unwrap_or(0.0)
    );
    println!(
        "passes: quick={} backfill={} reservations={}",
        cc.quick_passes, cc.backfill_passes, cc.reservations_made
    );
    let (w0, w1) = rep.window;
    println!(
        "ground truth: idle avg={:.2} pilot avg={:.2} (sum={:.2}); trace avail avg={:.2}",
        rep.idle_series.time_avg(w0, w1),
        rep.pilot_series.time_avg(w0, w1),
        rep.idle_series.time_avg(w0, w1) + rep.pilot_series.time_avg(w0, w1),
        trace_avg()
    );

    section("Paper vs measured");
    let mut c = Comparison::new();
    c.add("Slurm-level used %", 68.20, slurm.used_share * 100.0);
    c.add("Simulation coverage %", 84.13, sim.coverage() * 100.0);
    c.add("Slurm-level avg workers", 5.03, slurm.pilot_avg);
    c.add("Simulation avg ready", 5.97, sim.ready_avg);
    c.add("OW-level avg healthy", 4.96, ow.healthy.3);
    c.add("avg available nodes", 7.38, slurm.avg_available);
    c.add(
        "zero-availability % of time",
        9.44,
        slurm.zero_available_frac * 100.0,
    );
    c.add("accepted requests %", 78.28, acc * 100.0);
    c.add("success of accepted %", 96.99, succ * 100.0);
    c.add("median response ms", 1227.0, med_rt * 1000.0);
    c.add(
        "no-invoker total min",
        218.0,
        ow.no_invoker_total.as_mins_f64(),
    );
    c.add(
        "longest no-invoker min",
        85.0,
        ow.no_invoker_longest.as_mins_f64(),
    );
    if let Some((l50, l75, lavg)) = ow.lifetime_mins {
        c.add("invoker ready lifetime med min", 7.0, l50);
        c.add("invoker ready lifetime p75 min", 14.5, l75);
        c.add("invoker ready lifetime avg min", 14.0, lavg);
    }
    println!("{}", c.render());
}
