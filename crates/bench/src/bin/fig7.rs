//! Fig. 7 (§V-D): performance of single invocations — the three
//! compute-intensive SeBS kernels (bfs, mst, pagerank) on a Prometheus
//! node vs. AWS Lambda with 2048 MB.
//!
//! The kernels run for real on this machine (the "Prometheus node"
//! reference); Lambda is the calibrated slowdown model. The paper's
//! finding — a consistent ~15% advantage for the HPC node — is encoded
//! in the model and verified here per kernel, plus a memory-sweep
//! ablation showing how Lambda's CPU share scales.

use hpcwhisk_bench::{quick_mode, section, Comparison};
use sebs::{measure, Graph, Kernel, PlatformModel};

fn main() {
    let (n, m, warmup, reps) = if quick_mode() {
        (20_000, 3, 2, 20)
    } else {
        // "200 invocations to focus on warm performance" (§V-D).
        (100_000, 3, 10, 200)
    };
    let g = Graph::barabasi_albert(n, m, 7);
    eprintln!(
        "graph: {} vertices, {} edges (Barabasi-Albert m={m})",
        g.n,
        g.n_edges()
    );

    let prometheus = PlatformModel::prometheus_node();
    let lambda = PlatformModel::aws_lambda_2048();

    section("Fig 7: median execution time per kernel (ms)");
    println!("kernel   | Prometheus node | AWS Lambda 2048MB | HPC advantage");
    let mut c = Comparison::new();
    for k in Kernel::ALL {
        let meas = measure(k, &g, warmup, reps);
        let p_ms = meas.on_platform(&prometheus) * 1_000.0;
        let l_ms = meas.on_platform(&lambda) * 1_000.0;
        let adv = (1.0 - p_ms / l_ms) * 100.0;
        println!(
            "{:<8} | {:>15.2} | {:>17.2} | {:>12.1}%",
            k.name(),
            p_ms,
            l_ms,
            adv
        );
        c.add(&format!("{} advantage %", k.name()), 15.0, adv);
    }

    section("Ablation: Lambda memory sweep (pagerank, modeled)");
    let meas = measure(Kernel::Pagerank, &g, warmup.min(2), reps.min(30));
    println!("memory MB | modeled median ms");
    for mem in [512, 1024, 1792, 2048, 3008] {
        let p = PlatformModel::aws_lambda(mem);
        println!("{mem:>9} | {:>16.2}", meas.on_platform(&p) * 1_000.0);
    }

    section("Paper vs measured");
    c.add_str(
        "advantage consistent across kernels",
        "yes",
        "yes (same model factor)",
    );
    println!("{}", c.render());
}
