//! Closed-loop mode: instead of replaying a calibrated idle trace, feed
//! the scheduler a *generated HPC job stream* (Fig. 2 distributions)
//! through a backlog driver and let utilization, fragmentation and
//! idleness **emerge** from the EASY backfill itself — then harvest the
//! emergent gaps with the fib pilot manager.
//!
//! This exercises the code paths the trace-driven experiments barely
//! touch: multi-node placement, future-start reservations, backfilling
//! short jobs in front of blocked wide jobs, and preemption driven by
//! genuinely unpredictable job completions.

use cluster::{ClusterEvent, ClusterNote, ClusterSim, Counters, JobKind, PollSample, SlurmConfig};
use hpcwhisk_bench::{quick_mode, section, Comparison};
use hpcwhisk_core::coverage;
use hpcwhisk_core::{lengths, FibManager, PilotManager, REPLENISH_EVERY};
use metrics::OnlineStats;
use rayon::prelude::*;
use simcore::{Engine, Outbox, SimDuration, SimRng, SimTime};
use workload::{BacklogDriver, HpcWorkloadModel};

#[derive(Debug, Clone, PartialEq)]
enum Ev {
    C(ClusterEvent),
    HpcTick,
    ManagerTick,
    PilotExit(cluster::JobId),
}

/// Scheduler fill-up window excluded from the reported samples.
const WARMUP_MINS: u64 = 45;

/// One closed-loop run, fully determined by `seed`. `spans` turns on
/// per-pass phase timing (wall-clock, so only for observability runs).
fn run_closed_loop(
    seed: u64,
    n_nodes: usize,
    hours: u64,
    spans: bool,
) -> (Counters, Vec<PollSample>) {
    let horizon = SimTime::from_hours(hours);
    let warmup_window = SimTime::from_mins(WARMUP_MINS);

    let mut sim = ClusterSim::new(SlurmConfig::default(), n_nodes, seed);
    if spans {
        sim.enable_pass_spans();
    }
    let model = HpcWorkloadModel::prometheus();
    let driver = BacklogDriver::new(model, n_nodes);
    let mut manager = FibManager::paper(lengths::A1.to_vec());
    let mut rng = SimRng::seed_from_u64(seed ^ 77);

    let mut engine: Engine<Ev> = Engine::with_queue_capacity(4_096);
    {
        let mut co = Outbox::new(SimTime::ZERO);
        sim.bootstrap(SimTime::ZERO, &mut co);
        for (t, e) in co.drain() {
            engine.schedule(t, Ev::C(e));
        }
    }
    engine.schedule(SimTime::ZERO, Ev::HpcTick);
    engine.schedule(SimTime::ZERO, Ev::ManagerTick);

    let mut samples: Vec<PollSample> = Vec::new();

    engine.run_until(
        horizon,
        &mut |now: SimTime, ev: Ev, out: &mut Outbox<Ev>| {
            let mut co = Outbox::new(now);
            let mut notes: Vec<ClusterNote> = Vec::new();
            match ev {
                Ev::C(e) => sim.handle(now, e, &mut co, &mut notes),
                Ev::HpcTick => {
                    // Refresh the pending-work estimate from the queue and
                    // top the backlog up to the driver's target.
                    let mut est = 0.0;
                    sim_pending_hpc(&sim, &mut est);
                    if std::env::var("CLOSED_LOOP_DEBUG").is_ok()
                        && (now.as_mins_f64() as u64).is_multiple_of(15)
                    {
                        let hpc_pending = sim.pending_matching(|j| j.spec.kind == JobKind::Hpc);
                        eprintln!(
                        "[{now}] idle={} pilot={} pending_hpc={} pending_nh={est:.0} started={}",
                        sim.n_idle(),
                        sim.n_pilot_nodes(),
                        hpc_pending,
                        sim.counters().hpc_started
                    );
                    }
                    for spec in driver.replenish(est, &mut rng) {
                        sim.submit(now, spec, &mut co);
                    }
                    out.after(SimDuration::from_mins(1), Ev::HpcTick);
                }
                Ev::ManagerTick => {
                    for spec in manager.replenish(&sim) {
                        sim.submit(now, spec, &mut co);
                    }
                    out.after(REPLENISH_EVERY, Ev::ManagerTick);
                }
                Ev::PilotExit(j) => sim.pilot_exited(now, j, &mut co, &mut notes),
            }
            for (t, e) in co.drain() {
                out.at(t, Ev::C(e));
            }
            for n in notes {
                match n {
                    ClusterNote::JobSigterm { job, .. }
                        if sim.job(job).spec.kind == JobKind::Pilot =>
                    {
                        // Invoker drains in ~2 s and exits.
                        out.after(SimDuration::from_secs(2), Ev::PilotExit(job));
                    }
                    ClusterNote::Polled(s) if now >= warmup_window => {
                        samples.push(s);
                    }
                    _ => {}
                }
            }
        },
    );

    (sim.counters().clone(), samples)
}

fn main() {
    let (n_nodes, hours) = if quick_mode() { (200, 2) } else { (1_000, 12) };
    let seeds: Vec<u64> = if quick_mode() {
        vec![2022]
    } else {
        vec![2022, 2023, 2024]
    };

    // Independent replications across seeds, one core each (the rayon
    // fanout leaves per-seed determinism untouched). Pass spans are
    // timed only when the run will be scraped.
    let spans = hpcwhisk_bench::arg_value("--metrics-out").is_some();
    let runs: Vec<(u64, Counters, Vec<PollSample>)> = seeds
        .clone()
        .into_par_iter()
        .map(|seed| {
            let (c, samples) = run_closed_loop(seed, n_nodes, hours, spans);
            (seed, c, samples)
        })
        .collect();
    let (c, samples) = (&runs[0].1, &runs[0].2);

    section("Closed-loop harvest: emergent idleness from a generated job stream");
    println!(
        "{n_nodes} nodes, {hours} h (first {WARMUP_MINS} min warm-up excluded), seed {}",
        seeds[0]
    );
    println!(
        "HPC jobs started {} / completed {}; backfill reservations created: {}",
        c.hpc_started, c.hpc_completed, c.reservations_made
    );
    println!(
        "pilots started {} (preempted {}, timed out {})",
        c.pilots_started, c.pilots_preempted, c.pilots_timed_out
    );

    let sl = coverage::slurm_level(samples);
    let utilization = 1.0 - sl.avg_available / n_nodes as f64;
    println!(
        "emergent utilization: {:.2}% busy; {:.2} available nodes on average",
        utilization * 100.0,
        sl.avg_available
    );
    println!(
        "pilot coverage of the emergent idle surface: {:.1}%",
        sl.used_share * 100.0
    );
    println!(
        "prime-demand delay from pilots: n/a in closed loop (jobs queue normally); \
         preemptions show the safety valve worked {} times",
        c.pilots_preempted
    );

    if runs.len() > 1 {
        section("Replication stability across seeds");
        let mut util = OnlineStats::new();
        let mut cov = OnlineStats::new();
        println!("seed | utilization % | coverage % | pilots | preempted");
        for (seed, rc, rs) in &runs {
            let rsl = coverage::slurm_level(rs);
            let ru = (1.0 - rsl.avg_available / n_nodes as f64) * 100.0;
            println!(
                "{seed} | {ru:>13.2} | {:>10.1} | {:>6} | {:>9}",
                rsl.used_share * 100.0,
                rc.pilots_started,
                rc.pilots_preempted
            );
            util.add(ru);
            cov.add(rsl.used_share * 100.0);
        }
        println!(
            "utilization {:.2}% ± {:.2}; coverage {:.1}% ± {:.1}",
            util.mean(),
            util.stddev(),
            cov.mean(),
            cov.stddev()
        );
    }

    section("Sanity vs the paper's regime");
    let mut cmp = Comparison::new();
    cmp.add("utilization %", 99.0, utilization * 100.0);
    cmp.add_str(
        "reservations exercised",
        "yes",
        if c.reservations_made > 0 { "yes" } else { "NO" },
    );
    cmp.add_str(
        "pilots harvest emergent gaps",
        "yes",
        if sl.used_share > 0.5 { "yes" } else { "NO" },
    );
    println!("{}", cmp.render());

    hpcwhisk_bench::write_scheduler_metrics_out(c);
}

/// Pending HPC work in node-hours (declared limits), for the backlog
/// feedback loop.
fn sim_pending_hpc(sim: &ClusterSim, est: &mut f64) {
    let total = std::cell::Cell::new(0.0f64);
    let _ = sim.pending_matching(|j| {
        if j.spec.kind == JobKind::Hpc {
            total.set(total.get() + j.spec.nodes as f64 * j.spec.time_limit.as_secs_f64() / 3600.0);
            true
        } else {
            false
        }
    });
    *est = total.get();
}
