//! Closed-loop mode: instead of replaying a calibrated idle trace, feed
//! the scheduler a *generated HPC job stream* (Fig. 2 distributions)
//! through a backlog driver and let utilization, fragmentation and
//! idleness **emerge** from the EASY backfill itself — then harvest the
//! emergent gaps with the fib pilot manager.
//!
//! This exercises the code paths the trace-driven experiments barely
//! touch: multi-node placement, future-start reservations, backfilling
//! short jobs in front of blocked wide jobs, and preemption driven by
//! genuinely unpredictable job completions.

use cluster::{ClusterEvent, ClusterNote, ClusterSim, JobKind, PollSample, SlurmConfig};
use hpcwhisk_bench::{quick_mode, section, Comparison};
use hpcwhisk_core::coverage;
use hpcwhisk_core::{lengths, FibManager, PilotManager, REPLENISH_EVERY};
use simcore::{Engine, Outbox, SimDuration, SimRng, SimTime};
use workload::{BacklogDriver, HpcWorkloadModel};

#[derive(Debug, Clone, PartialEq)]
enum Ev {
    C(ClusterEvent),
    HpcTick,
    ManagerTick,
    PilotExit(cluster::JobId),
}

fn main() {
    let (n_nodes, hours) = if quick_mode() { (200, 2) } else { (1_000, 12) };
    let horizon = SimTime::from_hours(hours);
    let warmup_window = SimTime::from_mins(45); // scheduler fill-up

    let mut sim = ClusterSim::new(SlurmConfig::default(), n_nodes, 2022);
    let model = HpcWorkloadModel::prometheus();
    let driver = BacklogDriver::new(model, n_nodes);
    let mut manager = FibManager::paper(lengths::A1.to_vec());
    let mut rng = SimRng::seed_from_u64(77);

    let mut engine: Engine<Ev> = Engine::new();
    {
        let mut co = Outbox::new(SimTime::ZERO);
        sim.bootstrap(SimTime::ZERO, &mut co);
        for (t, e) in co.drain() {
            engine.schedule(t, Ev::C(e));
        }
    }
    engine.schedule(SimTime::ZERO, Ev::HpcTick);
    engine.schedule(SimTime::ZERO, Ev::ManagerTick);

    let mut samples: Vec<PollSample> = Vec::new();

    engine.run_until(horizon, &mut |now: SimTime,
                                    ev: Ev,
                                    out: &mut Outbox<Ev>| {
        let mut co = Outbox::new(now);
        let mut notes: Vec<ClusterNote> = Vec::new();
        match ev {
            Ev::C(e) => sim.handle(now, e, &mut co, &mut notes),
            Ev::HpcTick => {
                // Refresh the pending-work estimate from the queue and
                // top the backlog up to the driver's target.
                let mut est = 0.0;
                sim_pending_hpc(&sim, &mut est);
                if std::env::var("CLOSED_LOOP_DEBUG").is_ok()
                    && now.as_mins_f64() as u64 % 15 == 0
                {
                    let hpc_pending = sim.pending_matching(|j| j.spec.kind == JobKind::Hpc);
                    eprintln!(
                        "[{now}] idle={} pilot={} pending_hpc={} pending_nh={est:.0} started={}",
                        sim.n_idle(),
                        sim.n_pilot_nodes(),
                        hpc_pending,
                        sim.counters().hpc_started
                    );
                }
                for spec in driver.replenish(est, &mut rng) {
                    sim.submit(now, spec, &mut co);
                }
                out.after(SimDuration::from_mins(1), Ev::HpcTick);
            }
            Ev::ManagerTick => {
                for spec in manager.replenish(&sim) {
                    sim.submit(now, spec, &mut co);
                }
                out.after(REPLENISH_EVERY, Ev::ManagerTick);
            }
            Ev::PilotExit(j) => sim.pilot_exited(now, j, &mut co, &mut notes),
        }
        for (t, e) in co.drain() {
            out.at(t, Ev::C(e));
        }
        for n in notes {
            match n {
                ClusterNote::JobSigterm { job, .. } => {
                    if sim.job(job).spec.kind == JobKind::Pilot {
                        // Invoker drains in ~2 s and exits.
                        out.after(SimDuration::from_secs(2), Ev::PilotExit(job));
                    }
                }
                ClusterNote::Polled(s) => {
                    if now >= warmup_window {
                        samples.push(s);
                    }
                }
                _ => {}
            }
        }
    });

    section("Closed-loop harvest: emergent idleness from a generated job stream");
    let c = sim.counters();
    println!(
        "{n_nodes} nodes, {hours} h (first {} warm-up excluded)",
        warmup_window
    );
    println!(
        "HPC jobs started {} / completed {}; backfill reservations created: {}",
        c.hpc_started, c.hpc_completed, c.reservations_made
    );
    println!(
        "pilots started {} (preempted {}, timed out {})",
        c.pilots_started, c.pilots_preempted, c.pilots_timed_out
    );

    let sl = coverage::slurm_level(&samples);
    let utilization = 1.0 - sl.avg_available / n_nodes as f64;
    println!(
        "emergent utilization: {:.2}% busy; {:.2} available nodes on average",
        utilization * 100.0,
        sl.avg_available
    );
    println!(
        "pilot coverage of the emergent idle surface: {:.1}%",
        sl.used_share * 100.0
    );
    println!(
        "prime-demand delay from pilots: n/a in closed loop (jobs queue normally); \
         preemptions show the safety valve worked {} times",
        c.pilots_preempted
    );

    section("Sanity vs the paper's regime");
    let mut cmp = Comparison::new();
    cmp.add("utilization %", 99.0, utilization * 100.0);
    cmp.add_str(
        "reservations exercised",
        "yes",
        if c.reservations_made > 0 { "yes" } else { "NO" },
    );
    cmp.add_str(
        "pilots harvest emergent gaps",
        "yes",
        if sl.used_share > 0.5 { "yes" } else { "NO" },
    );
    println!("{}", cmp.render());
}

/// Pending HPC work in node-hours (declared limits), for the backlog
/// feedback loop.
fn sim_pending_hpc(sim: &ClusterSim, est: &mut f64) {
    let total = std::cell::Cell::new(0.0f64);
    let _ = sim.pending_matching(|j| {
        if j.spec.kind == JobKind::Hpc {
            total.set(total.get() + j.spec.nodes as f64 * j.spec.time_limit.as_secs_f64() / 3600.0);
            true
        } else {
            false
        }
    });
    *est = total.get();
}
