//! Extension experiment (the paper's §VII future work): run the fib
//! harvest over a **full week** instead of a single day, and report
//! per-day coverage stability — "it would be interesting to evaluate and
//! characterize the quantity of unused resources in longer periods of
//! time".
//!
//! Each day is simulated independently (seeded per-day), mirroring how
//! the paper's two experiment days were separate runs; the week trace
//! uses the Fig. 1 idle-process calibration.
//!
//! `--sweep` goes further than the single week: a 4-week, multi-cluster,
//! multi-seed sweep through the parallel day driver, reporting per
//! day-of-week coverage with error bars across weeks × seeds. With
//! `--quick` the sweep shrinks to 1 week × 2 seeds on small clusters
//! (the CI smoke shape).

use hpcwhisk_bench::{quick_mode, section};
use hpcwhisk_core::{lengths, run_week_sweep, DayConfig, ManagerKind, SweepCluster, SweepConfig};
use metrics::OnlineStats;
use rayon::prelude::*;
use simcore::SimDuration;
use workload::IdleModel;

/// The worker count the rayon fan-out will use — the `RAYON_NUM_THREADS`
/// pin when set (the multicore CI job's cores→days/s curve), else every
/// available core.
fn worker_count() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The `--sweep` mode: §VII at full scale.
fn run_sweep(quick: bool) {
    let mut clusters = Vec::new();
    if quick {
        let mut small = IdleModel::prometheus_week();
        small.n_nodes = 250;
        small.target_avg_idle = 4.0;
        clusters.push(SweepCluster {
            label: "quick-250".into(),
            model: small,
        });
        let mut tiny = IdleModel::prometheus_week();
        tiny.n_nodes = 120;
        tiny.target_avg_idle = 2.5;
        clusters.push(SweepCluster {
            label: "quick-120".into(),
            model: tiny,
        });
    } else {
        clusters.push(SweepCluster {
            label: "prometheus-2239".into(),
            model: IdleModel::prometheus_week(),
        });
        let mut half = IdleModel::prometheus_week();
        half.n_nodes = 1_120;
        half.target_avg_idle = 5.2;
        clusters.push(SweepCluster {
            label: "half-1120".into(),
            model: half,
        });
        let mut busy = IdleModel::prometheus_week();
        busy.target_avg_idle = 5.0; // a busier quarter: half the idle surface
        clusters.push(SweepCluster {
            label: "busy-2239".into(),
            model: busy,
        });
    }
    let cfg = SweepConfig {
        weeks: if quick { 1 } else { 4 },
        seeds: if quick {
            vec![11, 23]
        } else {
            vec![11, 23, 47]
        },
        manager: ManagerKind::Fib(lengths::A1.to_vec()),
    };

    section(&format!(
        "Week-scale sweep: {} clusters x {} weeks x {} seeds ({} day-runs)",
        clusters.len(),
        cfg.weeks,
        cfg.seeds.len(),
        clusters.len() as u64 * cfg.weeks * 7 * cfg.seeds.len() as u64
    ));
    let wall = std::time::Instant::now();
    let days = run_week_sweep(&clusters, &cfg);
    let secs = wall.elapsed().as_secs_f64();
    println!(
        "simulated {} day-runs in {secs:.1} s on {} worker(s): {:.2} days/s",
        days.len(),
        worker_count(),
        days.len() as f64 / secs
    );

    // Per (cluster, day-of-week): mean ± stddev across weeks × seeds.
    println!(
        "cluster          | dow | coverage % (mean ± sd) | clairvoyant % | avail avg | max delay s"
    );
    let mut overall = vec![OnlineStats::new(); clusters.len()];
    let mut worst_delay = 0.0f64;
    for (ci, cl) in clusters.iter().enumerate() {
        for dow in 0..7u64 {
            let mut cov = OnlineStats::new();
            let mut clair = OnlineStats::new();
            let mut avail = OnlineStats::new();
            let mut delay = 0.0f64;
            for d in days.iter().filter(|d| d.cluster == ci && d.day == dow) {
                cov.add(d.coverage * 100.0);
                clair.add(d.clairvoyant * 100.0);
                avail.add(d.avg_available);
                delay = delay.max(d.max_demand_delay_secs);
                overall[ci].add(d.coverage * 100.0);
            }
            worst_delay = worst_delay.max(delay);
            if cov.count() > 0 {
                println!(
                    "{:<16} | {dow:>3} | {:>12.1} ± {:>4.1} | {:>13.1} | {:>9.2} | {:>11.1}",
                    cl.label,
                    cov.mean(),
                    cov.stddev(),
                    clair.mean(),
                    avail.mean(),
                    delay
                );
            }
        }
    }
    section("Sweep summary");
    for (ci, cl) in clusters.iter().enumerate() {
        println!(
            "{:<16} coverage {:.1}% ± {:.1} over {} day-runs (min {:.1}, max {:.1})",
            cl.label,
            overall[ci].mean(),
            overall[ci].stddev(),
            overall[ci].count(),
            overall[ci].min().unwrap_or(0.0),
            overall[ci].max().unwrap_or(0.0)
        );
    }
    println!(
        "\nworst prime-demand delay anywhere in the sweep: {worst_delay:.1} s \
         (the paper's invasiveness bound is 3 minutes + handover latency)"
    );
    assert!(
        worst_delay <= 200.0,
        "invasiveness bound violated in sweep: {worst_delay:.1} s"
    );
}

fn main() {
    let quick = quick_mode();
    if std::env::args().any(|a| a == "--sweep") {
        run_sweep(quick);
        return;
    }
    let days: u64 = if quick { 2 } else { 7 };
    let model = if quick {
        let mut m = IdleModel::prometheus_week();
        m.n_nodes = 300;
        m.target_avg_idle = 4.0;
        m
    } else {
        IdleModel::prometheus_week()
    };

    section("Week-long fib harvest (per-day runs)");
    println!(
        "day | avail avg | coverage % | clairvoyant % | pilots | preempted | max prime delay s"
    );

    // Trace generation fans out with rayon; the day simulations go
    // through the shared parallel driver (deterministic per-seed).
    let day_inputs: Vec<_> = (0..days)
        .into_par_iter()
        .map(|day| {
            let trace = model.generate(SimDuration::from_hours(24), 100 + day);
            let mut cfg = DayConfig::fib_paper(100 + day);
            cfg.load = None;
            (trace, cfg)
        })
        .collect();
    let wall = std::time::Instant::now();
    let reports = hpcwhisk_core::run_days(day_inputs);
    let secs = wall.elapsed().as_secs_f64();
    println!(
        "simulated {days} days in {secs:.1} s on {} worker(s): {:.2} days/s",
        worker_count(),
        days as f64 / secs
    );
    let mut week_counters = cluster::Counters::default();
    let results: Vec<(u64, f64, f64, f64, u64, u64, f64)> = reports
        .into_iter()
        .enumerate()
        .map(|(day, rep)| {
            week_counters.absorb(&rep.cluster_counters);
            let slurm = rep.slurm_level();
            let sim = rep.simulation(lengths::A1.to_vec());
            (
                day as u64,
                slurm.avg_available,
                slurm.used_share * 100.0,
                sim.coverage() * 100.0,
                rep.cluster_counters.pilots_started,
                rep.cluster_counters.pilots_preempted,
                rep.cluster_counters.demand_delay_secs.max().unwrap_or(0.0),
            )
        })
        .collect();

    let mut cov = OnlineStats::new();
    let mut avail = OnlineStats::new();
    for (day, av, used, clair, pilots, preempted, delay) in &results {
        println!(
            "{day:>3} | {av:>9.2} | {used:>9.1} | {clair:>12.1} | {pilots:>6} | {preempted:>9} | {delay:>17.1}"
        );
        cov.add(*used);
        avail.add(*av);
    }

    section("Stability summary");
    println!(
        "coverage over {days} days: mean {:.1}% ± {:.1} (min {:.1}, max {:.1})",
        cov.mean(),
        cov.stddev(),
        cov.min().unwrap_or(0.0),
        cov.max().unwrap_or(0.0)
    );
    println!(
        "available nodes: mean {:.2} ± {:.2}",
        avail.mean(),
        avail.stddev()
    );
    println!(
        "\nfinding: day-to-day idleness varies substantially (the paper's two \
         experiment days differed by ~40% in available surface), but fib \
         coverage stays within a few points of its clairvoyant bound on \
         every day — the harvest is robust to the daily mix."
    );

    // `--metrics-out <path>`: the week's scheduler counters, summed
    // across days, as a Prometheus exposition.
    hpcwhisk_bench::write_scheduler_metrics_out(&week_counters);
}
