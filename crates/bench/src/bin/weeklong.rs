//! Extension experiment (the paper's §VII future work): run the fib
//! harvest over a **full week** instead of a single day, and report
//! per-day coverage stability — "it would be interesting to evaluate and
//! characterize the quantity of unused resources in longer periods of
//! time".
//!
//! Each day is simulated independently (seeded per-day), mirroring how
//! the paper's two experiment days were separate runs; the week trace
//! uses the Fig. 1 idle-process calibration.

use hpcwhisk_bench::{quick_mode, section};
use hpcwhisk_core::{lengths, DayConfig};
use metrics::OnlineStats;
use rayon::prelude::*;
use simcore::SimDuration;
use workload::IdleModel;

fn main() {
    let quick = quick_mode();
    let days: u64 = if quick { 2 } else { 7 };
    let model = if quick {
        let mut m = IdleModel::prometheus_week();
        m.n_nodes = 300;
        m.target_avg_idle = 4.0;
        m
    } else {
        IdleModel::prometheus_week()
    };

    section("Week-long fib harvest (per-day runs)");
    println!(
        "day | avail avg | coverage % | clairvoyant % | pilots | preempted | max prime delay s"
    );

    // Trace generation fans out with rayon; the day simulations go
    // through the shared parallel driver (deterministic per-seed).
    let day_inputs: Vec<_> = (0..days)
        .into_par_iter()
        .map(|day| {
            let trace = model.generate(SimDuration::from_hours(24), 100 + day);
            let mut cfg = DayConfig::fib_paper(100 + day);
            cfg.load = None;
            (trace, cfg)
        })
        .collect();
    let reports = hpcwhisk_core::run_days(day_inputs);
    let results: Vec<(u64, f64, f64, f64, u64, u64, f64)> = reports
        .into_iter()
        .enumerate()
        .map(|(day, rep)| {
            let slurm = rep.slurm_level();
            let sim = rep.simulation(lengths::A1.to_vec());
            (
                day as u64,
                slurm.avg_available,
                slurm.used_share * 100.0,
                sim.coverage() * 100.0,
                rep.cluster_counters.pilots_started,
                rep.cluster_counters.pilots_preempted,
                rep.cluster_counters.demand_delay_secs.max().unwrap_or(0.0),
            )
        })
        .collect();

    let mut cov = OnlineStats::new();
    let mut avail = OnlineStats::new();
    for (day, av, used, clair, pilots, preempted, delay) in &results {
        println!(
            "{day:>3} | {av:>9.2} | {used:>9.1} | {clair:>12.1} | {pilots:>6} | {preempted:>9} | {delay:>17.1}"
        );
        cov.add(*used);
        avail.add(*av);
    }

    section("Stability summary");
    println!(
        "coverage over {days} days: mean {:.1}% ± {:.1} (min {:.1}, max {:.1})",
        cov.mean(),
        cov.stddev(),
        cov.min().unwrap_or(0.0),
        cov.max().unwrap_or(0.0)
    );
    println!(
        "available nodes: mean {:.2} ± {:.2}",
        avail.mean(),
        avail.stddev()
    );
    println!(
        "\nfinding: day-to-day idleness varies substantially (the paper's two \
         experiment days differed by ~40% in available surface), but fib \
         coverage stays within a few points of its clairvoyant bound on \
         every day — the harvest is robust to the daily mix."
    );
}
