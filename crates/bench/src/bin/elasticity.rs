//! The elasticity scenario (ISSUE 4): the paper's headline claim —
//! serving FaaS traffic *while* the substrate churns underneath —
//! executed end to end in the live plane.
//!
//! Three sub-scenarios, all runnable in one invocation:
//!
//! * **day replay** (`--day`, default): a day-profile availability
//!   trace from the Prometheus-calibrated idle model, compiled into a
//!   lease plan and replayed (time-compressed) by a background
//!   `CapacityController` while Poisson + diurnal load flows through
//!   the closed-loop harness. Asserts zero lost invocations and prints
//!   the per-action admitted/delayed/shed/lost breakdown plus the
//!   controller's grant/extend/drain/revoke counters.
//! * **churn matrix** (`--churn-matrix [N]`): the exactly-once
//!   acceptance matrix — N iterations (default 100) of trace-driven
//!   grant/revoke churn with randomized trace seeds, each executed at
//!   drain-batch sizes 1, 4 and 32, with mixed single/burst submission
//!   and spin bodies so revocations land mid-batch. Every iteration
//!   asserts zero lost and zero duplicated invocations by id set.
//! * **overload** (`--overload`): the backpressure shape comparison —
//!   the same ~2x-capacity overload run through the hard-shed baseline
//!   and the token-bucket path; asserts the bucket sheds strictly less
//!   and that its delays are the typed, bounded kind.
//!
//! `--quick` runs a scaled-down version of all three (the CI
//! `elasticity-churn` job). With no flags, all three run at full size.
//! `--metrics-out <path>` writes the day-replay gateway's Prometheus
//! exposition (CI greps it for shed/lease conservation invariants).
//!
//! Run with: `cargo run --release -p hpcwhisk_bench --bin elasticity [-- flags]`

use gateway::{
    run_load, run_load_with_controller, ActionBody, ActionId, ActionSpec, AdmissionPolicy,
    BurstScratch, CapacityController, ControllerConfig, Gateway, GatewayConfig, HarnessConfig,
    LeasePlan, TokenBucketCfg,
};
use simcore::{SimDuration, SimRng};
use std::collections::HashSet;
use std::time::{Duration, Instant};
use workload::{Arrival, DiurnalLoadGen, IdleModel, PoissonLoadGen};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let want = |flag: &str| args.iter().any(|a| a == flag);
    let all = !want("--day") && !want("--churn-matrix") && !want("--overload");

    if all || want("--day") {
        day_replay(quick);
    }
    if all || want("--churn-matrix") {
        let n = args
            .iter()
            .position(|a| a == "--churn-matrix")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(if quick { 15 } else { 100 });
        churn_matrix(n);
    }
    if all || want("--overload") {
        overload_shapes(quick);
    }
    println!("elasticity scenario OK");
}

/// Day-scale trace replay: availability churn from the calibrated idle
/// model against mixed Poisson + diurnal load, zero lost.
fn day_replay(quick: bool) {
    let (hours, seed) = if quick {
        (2, 7)
    } else {
        (24, IdleModel::FIB_DAY_SEED)
    };
    let trace_horizon = SimDuration::from_hours(hours);
    let trace =
        IdleModel::fib_day().capacity_trace(trace_horizon, seed, SimDuration::from_mins_f64(10.0));
    // Compress the day into a few wall seconds; cap concurrent leases
    // at a thread count a CI runner can serve, with a routable floor of
    // one (capped grants are reported, never silently dropped).
    let wall = if quick { 2.0 } else { 6.0 };
    let speedup = trace_horizon.as_secs_f64() / wall;
    let plan = LeasePlan::from_capacity_trace(&trace, speedup, 8, 1);
    println!(
        "[day] {hours} h fib-day trace: {} grants ({} capped at 8 leases), {} early revokes, replayed at {speedup:.0}x",
        plan.n_grants(),
        plan.capped_grants,
        trace.n_early_revokes(),
    );

    let gw = Gateway::new(
        GatewayConfig::default(),
        (0..8)
            .map(|i| {
                ActionSpec::noop(&format!("fn-{i}"))
                    .with_body(ActionBody::Spin(Duration::from_micros(5)))
                    .with_cold_start(Duration::from_micros(200))
            })
            .collect(),
    );
    let mut arrivals: Vec<Arrival> =
        PoissonLoadGen::new(2_000.0, 8).arrivals(SimDuration::from_secs_f64(wall * 0.9), 1);
    arrivals.extend(
        DiurnalLoadGen::new(500.0, 4_000.0, SimDuration::from_secs_f64(wall * 0.9), 8)
            .arrivals(SimDuration::from_secs_f64(wall * 0.9), 2),
    );
    arrivals.sort_by_key(|a| a.at);

    let ctl = CapacityController::new(&gw, plan, ControllerConfig::default(), Instant::now());
    let (mut report, stats) = run_load_with_controller(
        &gw,
        ctl,
        &arrivals,
        &HarnessConfig {
            stall_timeout: Duration::from_secs(30),
            ..Default::default()
        },
    );
    println!("[day] harness: {}", report.summary());
    println!(
        "[day] controller: {} grants, {} extends, {} deadline drains, {} revokes ({} surprise), {} regrants, {} floor deferrals, {} reaped at finish",
        stats.grants,
        stats.extends,
        stats.deadline_drains,
        stats.revokes,
        stats.surprise_revokes,
        stats.regrants_after_drain,
        stats.floor_deferrals,
        stats.reaped_at_finish,
    );
    assert_eq!(report.lost(), 0, "day replay lost accepted invocations");
    assert!(report.completed > 0, "day replay completed nothing");
    assert!(stats.revokes + stats.deadline_drains > 0, "no churn landed");
    hpcwhisk_bench::write_metrics_out(&gw);
    assert_eq!(gw.shutdown(), 0, "requests stranded at shutdown");
    let pools = gw.retired_pool_stats();
    assert!(pools.containers_conserved(), "container leak: {pools:?}");
    println!(
        "[day] OK: {} completed, 0 lost, {} containers retired at drains\n",
        report.completed, pools.drain_retired
    );
}

/// The acceptance matrix: exactly-once under trace-driven churn at
/// every drain-batch size, with randomized trace seeds.
fn churn_matrix(iterations: u64) {
    for &drain_batch in &[1usize, 4, 32] {
        for iter in 0..iterations {
            churn_iteration(iter, drain_batch);
        }
        println!("[matrix] drain_batch {drain_batch}: {iterations} iterations exactly-once");
    }
}

fn churn_iteration(seed: u64, drain_batch: usize) {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xe1a5_71c1 ^ (drain_batch as u64) << 32);
    // A fresh 30-minute window of the calibrated week per iteration:
    // randomized trace seeds drive genuinely different grant/revoke
    // schedules.
    let trace = IdleModel::prometheus_week().capacity_trace(
        SimDuration::from_mins_f64(30.0),
        0x5eed ^ seed.wrapping_mul(0x9e37_79b9) ^ drain_batch as u64,
        SimDuration::from_mins_f64(5.0),
    );
    // Compress to ~40 ms of wall time and step it with a virtual clock.
    let plan_wall = Duration::from_millis(40);
    let speedup = SimDuration::from_mins_f64(30.0).as_secs_f64() / plan_wall.as_secs_f64();
    let plan = LeasePlan::from_capacity_trace(&trace, speedup, 6, 1);

    let gw = Gateway::new(
        GatewayConfig {
            queue_capacity: 16,
            park: Duration::from_micros(200),
            drain_batch,
            ..Default::default()
        },
        vec![
            ActionSpec::noop("noop"),
            ActionSpec::noop("spin").with_body(ActionBody::Spin(Duration::from_micros(
                20 + rng.range_u64(0, 60),
            ))),
        ],
    );
    let n_requests = 150 + rng.index(150);
    let step = plan_wall / n_requests as u32;
    let t0 = Instant::now();
    let mut ctl = CapacityController::new(
        &gw,
        plan,
        ControllerConfig {
            drain_headroom: step * 2,
            min_routable: 1,
            ..Default::default()
        },
        t0,
    );

    let mut accepted = HashSet::new();
    let mut scratch = BurstScratch::default();
    for i in 0..n_requests {
        ctl.poll(t0 + step * i as u32);
        if rng.chance(0.25) {
            let n = 2 + rng.index(10);
            let reqs: Vec<_> = (0..n)
                .map(|_| (ActionId(rng.index(2) as u32), rng.next_u64()))
                .collect();
            let mut outcomes = Vec::new();
            gw.invoke_burst(&reqs, Instant::now(), &mut outcomes, &mut scratch);
            for outcome in outcomes.into_iter().flatten() {
                assert!(accepted.insert(outcome.id), "duplicate id");
            }
        } else if let Ok(admit) = gw.invoke(ActionId(rng.index(2) as u32), rng.next_u64()) {
            assert!(accepted.insert(admit.id), "duplicate id");
        }
    }

    let mut completed = HashSet::new();
    while completed.len() < accepted.len() {
        let c = gw.recv_timeout(Duration::from_secs(10)).unwrap_or_else(|| {
            panic!(
                "seed {seed} batch {drain_batch}: lost {} of {} ({:?})",
                accepted.len() - completed.len(),
                accepted.len(),
                ctl.stats()
            )
        });
        assert!(
            completed.insert(c.id),
            "seed {seed} batch {drain_batch}: request {} executed twice",
            c.id
        );
    }
    assert_eq!(completed, accepted, "seed {seed} batch {drain_batch}");
    ctl.finish();
    assert_eq!(gw.shutdown(), 0, "seed {seed} batch {drain_batch}");
    let pools = gw.retired_pool_stats();
    assert!(
        pools.containers_conserved(),
        "seed {seed} batch {drain_batch}: container leak: {pools:?}"
    );
}

/// Backpressure shapes at ~2x capacity: hard shed (cliff) vs token
/// bucket (typed, bounded slope).
fn overload_shapes(quick: bool) {
    let service = Duration::from_micros(200); // ~5k ops/s per invoker
    let span_ms = if quick { 300 } else { 800 };
    let arrivals = PoissonLoadGen::new(10_000.0, 1).arrivals(SimDuration::from_millis(span_ms), 17);
    let open_loop = HarnessConfig {
        speedup: 1.0,
        max_inflight: 1_000_000,
        stall_timeout: Duration::from_secs(30),
        ..Default::default()
    };
    let run = |admission: AdmissionPolicy, queue_capacity: usize| {
        let gw = Gateway::new(
            GatewayConfig {
                queue_capacity,
                admission,
                ..Default::default()
            },
            vec![ActionSpec::noop("hot").with_body(ActionBody::Spin(service))],
        );
        gw.start_invoker();
        let r = run_load(&gw, &arrivals, &open_loop);
        assert_eq!(gw.shutdown(), 0);
        r
    };

    let mut hard = run(AdmissionPolicy::HardShed, 32);
    let bucket_cfg = TokenBucketCfg {
        rate_per_invoker: 5_000.0,
        burst: 32.0,
        max_delay: Duration::from_millis(100),
    };
    let mut bucket = run(AdmissionPolicy::TokenBucket(bucket_cfg), 65_536);

    println!("[overload] hard shed : {}", hard.summary());
    println!("[overload] bucket    : {}", bucket.summary());
    assert_eq!(hard.lost() + bucket.lost(), 0, "overload lost requests");
    assert!(hard.shed > 0, "baseline not overloaded");
    assert!(
        bucket.shed < hard.shed,
        "token bucket must shed strictly less: {} vs {}",
        bucket.shed,
        hard.shed
    );
    assert!(bucket.delayed > 0, "no typed delays under overload");
    assert_eq!(
        bucket.per_action[0].shed_queue_full, 0,
        "bucket hit the backstop bound"
    );
    let bucket_p99_ms = bucket.latency_quantile(0.99) * 1e3;
    let hard_p99_ms = hard.latency_quantile(0.99) * 1e3;
    println!(
        "[overload] OK: sheds {} -> {} (-{:.0}%), {} delayed admissions, bucket p99 {bucket_p99_ms:.1} ms vs hard p99 {hard_p99_ms:.1} ms\n",
        hard.shed,
        bucket.shed,
        100.0 * (hard.shed - bucket.shed) as f64 / hard.shed.max(1) as f64,
        bucket.delayed,
    );
}
