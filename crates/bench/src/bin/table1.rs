//! Table I (§IV-B): the offline simulation comparing six candidate
//! pilot-job length sets over the week's idle trace — the calibration
//! that picked set A1 for the fib model.

use hpcwhisk_bench::{quick_mode, section, Comparison};
use hpcwhisk_core::offline::{simulate, OfflineConfig, OfflineReport};
use hpcwhisk_core::{lengths, report};
use rayon::prelude::*;
use simcore::SimDuration;
use workload::IdleModel;

fn main() {
    let mut model = IdleModel::prometheus_week();
    let hours = if quick_mode() {
        model.n_nodes = 300;
        model.target_avg_idle = 4.0;
        24
    } else {
        7 * 24
    };
    let trace = model.generate(SimDuration::from_hours(hours), 42);
    eprintln!(
        "week trace: {} gaps, {:.0} node-hours available",
        trace.n_intervals(),
        trace.total_available().as_secs_f64() / 3600.0
    );

    // The six sets, simulated in parallel (rayon).
    let sets = lengths::all_sets();
    let reports: Vec<(&str, Vec<u64>, OfflineReport)> = sets
        .into_par_iter()
        .map(|(name, set)| {
            let rep = simulate(&trace, &OfflineConfig::table1(set.clone()));
            (name, set, rep)
        })
        .collect();

    section("Table I: simulated coverage of idleness periods per length set");
    println!("{}", report::render_table1(&reports));

    section("Paper vs measured (structural checks)");
    let by_name = |n: &str| &reports.iter().find(|(name, _, _)| *name == n).unwrap().2;
    let a1 = by_name("A1");
    let a2 = by_name("A2");
    let b = by_name("B");
    let c1 = by_name("C1");
    let c2 = by_name("C2");

    let mut c = Comparison::new();
    c.add("A1 # of jobs", 10_767.0, a1.n_jobs as f64);
    c.add("A1 warm-up %", 3.98, a1.warmup_share * 100.0);
    c.add("A1 ready %", 80.58, a1.ready_share * 100.0);
    c.add("A1 not used %", 15.44, a1.unused_share * 100.0);
    c.add("A1 avg ready workers", 7.44, a1.ready_avg);
    c.add("A1 non-availability %", 14.82, a1.non_availability * 100.0);
    c.add("C2 ready %", 81.20, c2.ready_share * 100.0);
    c.add("B # of jobs", 12_348.0, b.n_jobs as f64);

    // Structural invariants the paper's Table I exhibits:
    let unused: Vec<f64> = reports.iter().map(|(_, _, r)| r.unused_share).collect();
    let max_spread = unused
        .iter()
        .fold(0.0f64, |m, u| m.max((u - unused[0]).abs()));
    c.add_str(
        "not-used share identical across sets",
        "yes",
        if max_spread < 0.005 { "yes" } else { "NO" },
    );
    c.add_str(
        "C2 has the fewest jobs / best ready share",
        "yes",
        if c2.n_jobs <= c1.n_jobs
            && reports
                .iter()
                .all(|(_, _, r)| c2.ready_share >= r.ready_share - 1e-9)
        {
            "yes"
        } else {
            "NO"
        },
    );
    c.add_str(
        "B places the most jobs / worst ready share",
        "yes",
        if reports.iter().all(|(_, _, r)| b.n_jobs >= r.n_jobs)
            && reports
                .iter()
                .all(|(_, _, r)| b.ready_share <= r.ready_share + 1e-9)
        {
            "yes"
        } else {
            "NO"
        },
    );
    c.add_str(
        "A1 beats A2 on ready share",
        "yes",
        if a1.ready_share >= a2.ready_share {
            "yes"
        } else {
            "NO"
        },
    );
    println!("{}", c.render());
}
