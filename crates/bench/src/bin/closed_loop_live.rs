//! The closed loop, live (ISSUE 8 tentpole demo): feedback-driven pilot
//! sizing against the *real* gateway, compared to an equal-invasiveness
//! static replay.
//!
//! Two legs over the **same** diurnal arrival stream:
//!
//! * **feedback** — a [`DesLeaseSource`] steps the cluster DES to the
//!   wall clock while the controller reports each window's observed
//!   load back into the [`LoadSizedManager`]'s pilot sizing. Capacity
//!   follows demand: the sizer rides the diurnal swing up to its cap at
//!   the peak and back to the floor in the trough.
//! * **static** — the invasiveness the feedback leg actually spent
//!   (`pilot_leased_node_secs_total`, serving time only) is flattened
//!   into K constant always-on invokers and replayed as a compiled
//!   [`LeasePlan`]. Same node-seconds, no feedback.
//!
//! The claim under test is the paper's §IV cycle in one number: at
//! equal invasiveness the closed loop sheds strictly less, because it
//! concentrates capacity where the demand is instead of spreading it
//! evenly across the day. Both legs must lose nothing (the §III-C drain
//! guarantee) and the pilot books must balance exactly
//! (`pilot_grants_total == pilot_revokes_total` once the horizon closes
//! every lease).
//!
//! `--quick` runs the scaled-down CI shape. `--metrics-out <path>`
//! writes the feedback leg's gateway exposition concatenated with the
//! pilot-plane exposition (`pilot_*` families) — CI greps it for the
//! conservation invariants.
//!
//! Run with: `cargo run --release -p hpcwhisk_bench --bin closed_loop_live [-- flags]`

use gateway::{
    run_load_with_controller, ActionBody, ActionSpec, CapacityController, ControllerConfig,
    Gateway, GatewayConfig, HarnessConfig, LeaseEvent, LeaseEventKind, LeasePlan, LeaseStats,
    LoadReport,
};
use hpcwhisk_bench::{arg_value, quick_mode, section};
use hpcwhisk_core::{DesLeaseSource, DesSourceCfg, SizerCfg};
use simcore::SimDuration;
use std::time::{Duration, Instant};
use workload::{Arrival, DiurnalLoadGen};

/// Node id the static leg's pinned floor invoker lives on, far above
/// the K replayed invokers (mirrors the DES source's floor block).
const STATIC_FLOOR_NODE: u32 = 1_000_000;

struct Scenario {
    /// Wall span of the arrival stream (one diurnal cycle).
    load_wall: f64,
    /// Wall span of the DES horizon — strictly inside the load span, so
    /// the source exhausts (and closes its invasiveness books) while
    /// traffic still flows and both legs serve the tail on the floor.
    horizon_wall: f64,
    /// Simulated horizon; `speedup = horizon / horizon_wall`.
    horizon: SimDuration,
    trough_qps: f64,
    peak_qps: f64,
}

impl Scenario {
    fn new(quick: bool) -> Self {
        let load_wall = if quick { 2.5 } else { 5.0 };
        Scenario {
            load_wall,
            horizon_wall: load_wall * 0.8,
            horizon: SimDuration::from_hours(1),
            trough_qps: 100.0,
            peak_qps: 10_000.0,
        }
    }

    fn speedup(&self) -> f64 {
        self.horizon.as_secs_f64() / self.horizon_wall
    }

    fn arrivals(&self) -> Vec<Arrival> {
        let span = SimDuration::from_secs_f64(self.load_wall);
        DiurnalLoadGen::new(self.trough_qps, self.peak_qps, span, 8).arrivals(span, 11)
    }

    fn gateway(&self) -> Gateway {
        // Sleep bodies, not spin: an invoker serves ~1k req/s of 1 ms
        // I/O-bound work while *yielding* the core, so aggregate
        // capacity scales with the invoker count even on a single-CPU
        // runner — exactly the thing the two legs differ in. The small
        // queue keeps the shed signal sharp at saturation.
        Gateway::new(
            GatewayConfig {
                queue_capacity: 256,
                ..Default::default()
            },
            (0..8)
                .map(|i| {
                    ActionSpec::noop(&format!("fn-{i}"))
                        .with_body(ActionBody::Sleep(Duration::from_millis(1)))
                        .with_cold_start(Duration::from_micros(200))
                })
                .collect(),
        )
    }

    fn harness(&self) -> HarnessConfig {
        // Open loop: arrivals hit the gateway on schedule regardless of
        // how far behind it is — overload must shed, not slip.
        HarnessConfig {
            max_inflight: 1_000_000,
            stall_timeout: Duration::from_secs(30),
            ..Default::default()
        }
    }
}

fn main() {
    let quick = quick_mode();
    let sc = Scenario::new(quick);
    let arrivals = sc.arrivals();
    println!(
        "closed loop live: {} arrivals over {:.1} s wall ({}..{} req/s diurnal), DES horizon {:.0} sim s at {:.0}x",
        arrivals.len(),
        sc.load_wall,
        sc.trough_qps,
        sc.peak_qps,
        sc.horizon.as_secs_f64(),
        sc.speedup(),
    );

    section("feedback leg (DES-driven pilot capacity)");
    let (fb_report, fb_stats, leased_sim_secs, exposition) = feedback_leg(&sc, &arrivals);

    // Equal invasiveness: the serving node-seconds the feedback leg
    // spent, flattened into K constant invokers across the horizon.
    let k = ((leased_sim_secs as f64 / sc.horizon.as_secs_f64()).round() as usize).max(1);
    section(&format!(
        "static leg ({k} constant invokers = {leased_sim_secs} leased node-seconds / {:.0} s horizon)",
        sc.horizon.as_secs_f64()
    ));
    let (st_report, st_stats) = static_leg(&sc, &arrivals, k);

    section("comparison (equal invasiveness)");
    let pct = |part: u64, whole: u64| 100.0 * part as f64 / whole.max(1) as f64;
    println!(
        "  static  : {} sheds ({:.2}% of {}), {} grants, {} deadline drains",
        st_report.shed,
        pct(st_report.shed, st_report.submitted),
        st_report.submitted,
        st_stats.grants,
        st_stats.deadline_drains,
    );
    println!(
        "  feedback: {} sheds ({:.2}% of {}), {} grants, {} deadline drains, {} feedback windows",
        fb_report.shed,
        pct(fb_report.shed, fb_report.submitted),
        fb_report.submitted,
        fb_stats.grants,
        fb_stats.deadline_drains,
        fb_stats.feedbacks,
    );
    assert!(
        st_report.shed > 0,
        "static leg never saturated — the scenario is under-loaded and proves nothing"
    );
    assert!(
        fb_report.shed < st_report.shed,
        "feedback sizing must shed strictly less than static at equal invasiveness: {} vs {}",
        fb_report.shed,
        st_report.shed
    );

    if let Some(path) = arg_value("--metrics-out") {
        std::fs::write(&path, exposition).unwrap_or_else(|e| panic!("--metrics-out {path}: {e}"));
        println!("metrics exposition written to {path}");
    }
    println!(
        "\nclosed loop live OK: sheds {} -> {} (-{:.0}%) at {} leased node-seconds",
        st_report.shed,
        fb_report.shed,
        100.0 * (st_report.shed - fb_report.shed) as f64 / st_report.shed as f64,
        leased_sim_secs,
    );
}

/// The closed loop proper: DES source + load-sized manager behind the
/// controller, feedback windows flowing. Returns the leg's report and
/// stats, the invasiveness it spent (simulated serving node-seconds)
/// and the combined gateway + pilot-plane exposition.
fn feedback_leg(sc: &Scenario, arrivals: &[Arrival]) -> (LoadReport, LeaseStats, u64, String) {
    let src = DesLeaseSource::new(DesSourceCfg {
        n_nodes: 16,
        seed: 8,
        speedup: sc.speedup(),
        horizon: sc.horizon,
        max_leases: 12,
        floor: 1,
        drain: SimDuration::from_secs(2),
        warmup: None,     // boot instantly: the comparison is about sizing
        hpc_churn: false, // empty cluster: placement latency is the DES's
        sizer: SizerCfg {
            // Slightly under the ~1k req/s a 1 ms sleep invoker serves:
            // the sizer over-provisions ~10-20%, which is the feedback
            // leg's ramp-lag cushion.
            rate_per_invoker: 850.0,
            headroom: 1.1,
            backlog_per_invoker: 32.0,
            min_invokers: 1,
            max_invokers: 12,
            alpha: 0.5,
        },
        pilot_len: SimDuration::from_mins(10),
        pilot_priority: 10,
        replenish_every: SimDuration::from_secs(15),
        ..Default::default()
    });
    let registry = src.registry().clone();
    let gw = sc.gateway();
    let ctl = CapacityController::from_source(
        &gw,
        Box::new(src),
        ControllerConfig {
            min_routable: 1,
            feedback_every: Some(Duration::from_millis(40)),
            ..Default::default()
        },
        Instant::now(),
    );
    let (mut report, stats) = run_load_with_controller(&gw, ctl, arrivals, &sc.harness());
    println!("  harness   : {}", report.summary());
    println!(
        "  controller: {} grants, {} deadline drains, {} revokes ({} surprise), {} feedback windows, {} reaped at finish",
        stats.grants,
        stats.deadline_drains,
        stats.revokes,
        stats.surprise_revokes,
        stats.feedbacks,
        stats.reaped_at_finish,
    );
    assert_eq!(report.lost(), 0, "feedback leg lost accepted invocations");
    assert!(report.completed > 0, "feedback leg completed nothing");

    // The books balance exactly once the horizon closes every DES
    // lease: every pilot grant was revoked, nothing is live, and the
    // controller reaps exactly the pinned floor.
    let snap = registry.snapshot();
    let pg = snap.counter("pilot_grants_total", &[]).unwrap_or(0);
    let pr = snap.counter("pilot_revokes_total", &[]).unwrap_or(0);
    let live = snap.gauge("pilot_leases_live", &[]).unwrap_or(-1);
    println!("  pilots    : {pg} grants, {pr} revokes, {live} live at horizon");
    assert!(pg > 0, "the loop never granted pilot capacity");
    assert_eq!(pg, pr, "pilot books must balance at the horizon");
    assert_eq!(live, 0, "pilot_leases_live must read zero at the horizon");
    assert_eq!(
        stats.grants,
        stats.revokes + stats.reaped_at_finish,
        "controller books must balance after finish"
    );
    assert_eq!(stats.reaped_at_finish, 1, "only the floor survives");
    assert!(
        snap.counter("pilot_feedback_windows_total", &[])
            .unwrap_or(0)
            > 0,
        "no feedback window ever reached the sizer"
    );
    let leased = snap
        .counter("pilot_leased_node_secs_total", &[])
        .unwrap_or(0);
    assert!(leased > 0, "no invasiveness recorded");

    // Scrape both planes while they are still alive: the gateway's
    // serving-plane families plus the pilot-plane families.
    let mut exposition = String::new();
    if let Some(t) = gw.telemetry() {
        exposition.push_str(&metrics::telemetry::render_prometheus(
            &t.registry().snapshot(),
        ));
    }
    exposition.push_str(&metrics::telemetry::render_prometheus(&snap));
    assert_eq!(gw.shutdown(), 0, "requests stranded at shutdown");
    (report, stats, leased, exposition)
}

/// The control: the same node-seconds as K always-on invokers across
/// the horizon (plus the same pinned floor), replayed from a compiled
/// plan with no feedback.
fn static_leg(sc: &Scenario, arrivals: &[Arrival], k: usize) -> (LoadReport, LeaseStats) {
    let horizon_wall = Duration::from_secs_f64(sc.horizon_wall);
    let far = horizon_wall * 1_000;
    let mut events = vec![LeaseEvent {
        at: Duration::ZERO,
        node: STATIC_FLOOR_NODE,
        kind: LeaseEventKind::Grant { deadline: far },
    }];
    for node in 0..k as u32 {
        events.push(LeaseEvent {
            at: Duration::ZERO,
            node,
            kind: LeaseEventKind::Grant {
                deadline: horizon_wall,
            },
        });
        events.push(LeaseEvent {
            at: horizon_wall,
            node,
            kind: LeaseEventKind::Revoke,
        });
    }
    events.sort_by_key(|e| (e.at, e.kind.rank(), e.node));
    let plan = LeasePlan {
        events,
        horizon: far,
        capped_grants: 0,
        floor: 1,
    };
    let gw = sc.gateway();
    let ctl = CapacityController::new(
        &gw,
        plan,
        ControllerConfig {
            min_routable: 1,
            ..Default::default()
        },
        Instant::now(),
    );
    let (mut report, stats) = run_load_with_controller(&gw, ctl, arrivals, &sc.harness());
    println!("  harness   : {}", report.summary());
    println!(
        "  controller: {} grants, {} deadline drains, {} revokes, {} reaped at finish",
        stats.grants, stats.deadline_drains, stats.revokes, stats.reaped_at_finish,
    );
    assert_eq!(report.lost(), 0, "static leg lost accepted invocations");
    assert!(report.completed > 0, "static leg completed nothing");
    assert_eq!(gw.shutdown(), 0, "requests stranded at shutdown");
    (report, stats)
}
