//! Ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! 1. **Fast-lane handoff vs. stock OpenWhisk** — with the extension
//!    off, a departing worker's queued requests are lost and time out.
//! 2. **fib longest-first priority vs. uniform** — greedy long-job
//!    placement covers long gaps with fewer warm-ups.
//! 3. **Grace period length** — a grace shorter than the drain time
//!    causes hard kills and losses.
//! 4. **Backfill cadence for the var model** — slower passes directly
//!    eat coverage (the paper's §V-B2 mechanism).

use cluster::AvailabilityTrace;
use hpcwhisk_bench::section;
use hpcwhisk_core::{run_day, DayConfig, DayReport, ManagerKind};
use simcore::{SimDuration, SimTime};
use whisk::DynamicsMode;
use workload::{ConstantRateLoadGen, IdleModel};

fn day_trace(seed: u64) -> AvailabilityTrace {
    let mut m = IdleModel::var_day();
    m.n_nodes = 300;
    m.target_avg_idle = 5.0;
    m.forced_outage = None;
    m.generate(SimDuration::from_hours(6), seed)
}

fn loadgen() -> ConstantRateLoadGen {
    ConstantRateLoadGen {
        qps: 4.0,
        n_functions: 40,
    }
}

fn outcome_line(tag: &str, rep: &DayReport) {
    let c = &rep.whisk_counters;
    println!(
        "{tag:<28} submitted={:>6} success={:>6} failed={:>4} timeout={:>5} 503={:>5} coverage={:>5.1}%",
        c.submitted,
        c.success,
        c.failed,
        c.timeout,
        c.rejected_503,
        rep.slurm_level().used_share * 100.0
    );
}

fn main() {
    let trace = day_trace(11);

    section("Ablation 1: HPC-Whisk drain protocol vs stock OpenWhisk");
    let mut on = DayConfig::fib_paper(3);
    on.load = Some(loadgen());
    let rep_on = run_day(&trace, on.clone());
    let mut off = on.clone();
    off.whisk.mode = DynamicsMode::Baseline;
    let rep_off = run_day(&trace, off);
    outcome_line("drain+fastlane (paper)", &rep_on);
    outcome_line("baseline OpenWhisk", &rep_off);
    let lost_on = rep_on.whisk_counters.timeout;
    let lost_off = rep_off.whisk_counters.timeout;
    println!(
        "→ requests lost (timeout): {lost_off} baseline vs {lost_on} with the drain protocol ({}x)",
        if lost_on > 0 {
            lost_off / lost_on.max(1)
        } else {
            lost_off
        }
    );

    section("Ablation 2: fib longest-first priority vs uniform priority");
    let mut fib = DayConfig::fib_paper(5);
    fib.load = None;
    let mut fib_uniform = fib.clone();
    fib_uniform.manager = match &fib.manager {
        ManagerKind::Fib(l) => ManagerKind::FibUniform(l.clone()),
        other => other.clone(),
    };
    let a = run_day(&trace, fib);
    let b = run_day(&trace, fib_uniform);
    let (sa, sb) = (a.slurm_level(), b.slurm_level());
    println!(
        "longest-first: coverage {:.1}%, pilots started {}",
        sa.used_share * 100.0,
        a.cluster_counters.pilots_started
    );
    println!(
        "uniform:       coverage {:.1}%, pilots started {}",
        sb.used_share * 100.0,
        b.cluster_counters.pilots_started
    );

    section("Ablation 3: preemption grace period vs drain completeness");
    println!("grace | hard deaths | clean drains | demand delay max s");
    for grace_secs in [1u64, 5, 30, 180] {
        let mut cfg = DayConfig::fib_paper(7);
        cfg.load = Some(loadgen());
        cfg.slurm.grace_time = SimDuration::from_secs(grace_secs);
        let rep = run_day(&trace, cfg);
        println!(
            "{:>4}s | {:>11} | {:>12} | {:>18.1}",
            grace_secs,
            rep.whisk_counters.hard_deaths,
            rep.whisk_counters.drains_clean,
            rep.cluster_counters.demand_delay_secs.max().unwrap_or(0.0)
        );
    }

    section("Ablation 4: backfill cadence for the var model");
    println!("bf pass cost/job | coverage % | avg granted min");
    for cost_ms in [40u64, 450, 1_500, 3_000] {
        let mut cfg = DayConfig::var_paper(9);
        cfg.load = None;
        cfg.slurm.bf_per_job_cost = SimDuration::from_millis(cost_ms);
        let rep = run_day(&trace, cfg);
        println!(
            "{:>14}ms | {:>9.1} | {:>15.1}",
            cost_ms,
            rep.slurm_level().used_share * 100.0,
            rep.cluster_counters.pilot_granted_mins.mean()
        );
    }
    let _ = SimTime::ZERO;
}
