//! Table II + Fig. 5 (§V-B1, §V-C): the fib-model experiment day.
//!
//! Runs a 24-hour trace-driven day on a 2,239-node cluster with the fib
//! pilot manager (set A1) and the 10 QPS / 100-function responsiveness
//! load, then prints:
//!
//! * Table II — Simulation vs Slurm-level vs OpenWhisk-level;
//! * Fig. 5a — worker/idle counts over time (hourly averages);
//! * Fig. 5b — per-minute request outcomes (hourly aggregates);
//! * Fig. 5c — CDFs of idle / pilot / available node counts;
//! * a paper-vs-measured comparison of the headline numbers.

use hpcwhisk_bench::{quick_mode, section, Comparison};
use hpcwhisk_core::{lengths, report, run_day, DayConfig};
use metrics::Cdf;
use simcore::{SimDuration, SimTime};
use workload::IdleModel;

fn main() {
    let quick = quick_mode();
    let (hours, model) = if quick {
        let mut m = IdleModel::fib_day();
        m.n_nodes = 200;
        m.target_avg_idle = 6.0;
        (3, m)
    } else {
        (24, IdleModel::fib_day())
    };
    let seed = IdleModel::FIB_DAY_SEED;
    let trace = model.generate(SimDuration::from_hours(hours), seed);
    eprintln!(
        "generated fib-day trace: {} nodes, {} gaps, {:.0} node-min available",
        trace.n_nodes(),
        trace.n_intervals(),
        trace.total_available().as_mins_f64()
    );

    let cfg = DayConfig::fib_paper(seed);
    let mut rep = run_day(&trace, cfg);

    section("Table II: fib job manager");
    let sim = rep.simulation(lengths::A1.to_vec());
    let slurm = rep.slurm_level();
    let ow = rep.ow_level();
    println!(
        "{}",
        report::render_day_table("(fib day)", &sim, &slurm, &ow)
    );

    section("Fig 5a: workers and idle nodes over time (hourly averages)");
    let (from, to) = rep.window;
    println!("hour | healthy workers | idle nodes");
    let mut t = from;
    while t < to {
        let t2 = (t + SimDuration::from_hours(1)).min_time(to);
        println!(
            "{:>4} | {:>15.2} | {:>10.2}",
            t.as_hours_f64() as u64,
            rep.healthy_series.time_avg(t, t2),
            rep.idle_series.time_avg(t, t2),
        );
        t = t2;
    }

    section("Fig 5b: request outcomes over time (hourly sums)");
    println!("hour | success | failed | lost(timeout) | 503");
    let n_hours = ((to - from).as_mins() as usize).div_ceil(60);
    for h in 0..n_hours {
        let range = h * 60..((h + 1) * 60).min(rep.success_bins.counts().len());
        let s: u64 = rep.success_bins.counts()[range.clone()].iter().sum();
        let f: u64 = rep.failed_bins.counts()[range.clone()].iter().sum();
        let l: u64 = rep.timeout_bins.counts()[range.clone()].iter().sum();
        let r: u64 = rep.rejected_bins.counts()[range].iter().sum();
        println!("{h:>4} | {s:>7} | {f:>6} | {l:>13} | {r:>4}");
    }

    section("Fig 5c: node-count CDFs (Slurm-level)");
    let mut idle = Cdf::new();
    let mut pilot = Cdf::new();
    let mut avail = Cdf::new();
    for s in &rep.samples {
        idle.add(s.n_idle() as f64);
        pilot.add(s.n_pilot() as f64);
        avail.add((s.n_idle() + s.n_pilot()) as f64);
    }
    println!("percentile | idle | OpenWhisk (pilot) | originally-idle");
    for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        println!(
            "{:>10} | {:>4} | {:>17} | {:>15}",
            format!("{:.0}%", p * 100.0),
            idle.quantile(p),
            pilot.quantile(p),
            avail.quantile(p)
        );
    }

    section("Responsiveness summary (§V-C)");
    let acc = rep.acceptance_rate();
    let (succ, fail, to_share) = rep.accepted_outcome_shares();
    let med_rt = if rep.latency_success_secs.is_empty() {
        f64::NAN
    } else {
        rep.latency_success_secs.median()
    };
    println!(
        "accepted: {:.2}%   of accepted: success {:.2}%, failed {:.2}%, timeout {:.2}%",
        acc * 100.0,
        succ * 100.0,
        fail * 100.0,
        to_share * 100.0
    );
    println!(
        "median response time of successes: {:.0} ms",
        med_rt * 1000.0
    );

    section("Paper vs measured");
    let mut c = Comparison::new();
    c.add("Slurm-level used %", 89.97, slurm.used_share * 100.0);
    c.add("Simulation coverage %", 91.95, sim.coverage() * 100.0);
    c.add("Slurm-level avg workers", 10.66, slurm.pilot_avg);
    c.add("Simulation avg ready", 10.59, sim.ready_avg);
    c.add("OW-level avg healthy", 10.39, ow.healthy.3);
    c.add("avg available nodes", 11.85, slurm.avg_available);
    c.add(
        "zero-availability % of time",
        0.6,
        slurm.zero_available_frac * 100.0,
    );
    c.add("accepted requests %", 95.29, acc * 100.0);
    c.add("success of accepted %", 95.19, succ * 100.0);
    c.add("median response ms", 865.0, med_rt * 1000.0);
    c.add(
        "no-invoker total min",
        24.0,
        ow.no_invoker_total.as_mins_f64(),
    );
    if let Some((l50, l75, lavg)) = ow.lifetime_mins {
        c.add("invoker ready lifetime med min", 11.0, l50);
        c.add("invoker ready lifetime p75 min", 31.0, l75);
        c.add("invoker ready lifetime avg min", 23.0, lavg);
    }
    println!("{}", c.render());
}

trait MinTime {
    fn min_time(self, other: SimTime) -> SimTime;
}
impl MinTime for SimTime {
    fn min_time(self, other: SimTime) -> SimTime {
        if self < other {
            self
        } else {
            other
        }
    }
}
