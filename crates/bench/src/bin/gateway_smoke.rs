//! CI smoke test of the live serving plane: ~2 s of mixed Poisson +
//! diurnal traffic against a lease-driven invoker pool — four leases
//! granted up front, one of which hits its deadline mid-run (so the
//! controller drains it *ahead* of the revoke) and is replaced by a
//! fresh grant — then hard assertions: zero lost requests, nonzero
//! throughput, a deadline-led drain actually observed, container books
//! balanced. Exits nonzero on any violation.
//!
//! Run with: `cargo run --release -p hpcwhisk_bench --bin gateway_smoke`.
//! Pass `--metrics-out <path>` to also dump the gateway's Prometheus
//! exposition after the run (CI greps it for conservation invariants).

use gateway::{
    run_load_with_controller, ActionBody, ActionSpec, CapacityController, ControllerConfig,
    Gateway, GatewayConfig, HarnessConfig, LeaseEvent, LeaseEventKind, LeasePlan,
};
use simcore::SimDuration;
use std::time::{Duration, Instant};
use workload::{Arrival, DiurnalLoadGen, PoissonLoadGen};

fn main() {
    let horizon = SimDuration::from_millis(1_000);
    // Half the traffic memoryless, half diurnal (one compressed cycle),
    // merged into a single schedule replayed in real time — together
    // about two seconds of wall clock.
    let mut arrivals: Vec<Arrival> = PoissonLoadGen::new(3_000.0, 8).arrivals(horizon, 1);
    arrivals.extend(DiurnalLoadGen::new(500.0, 6_000.0, horizon, 8).arrivals(horizon, 2));
    arrivals.sort_by_key(|a| a.at);

    let gw = Gateway::new(
        GatewayConfig::default(),
        (0..8)
            .map(|i| {
                ActionSpec::noop(&format!("fn-{i}"))
                    .with_body(ActionBody::Spin(Duration::from_micros(5)))
                    .with_cold_start(Duration::from_micros(200))
            })
            .collect(),
    );

    // The lease plan: nodes 0-3 granted at the epoch. Node 0's lease
    // deadline lands mid-replay — the controller must drain it before
    // the revoke arrives 80 ms later (a window wide enough that a
    // descheduled controller thread on a loaded CI runner still gets a
    // poll in) — and node 4 replaces it.
    let grant = |at_ms: u64, node: u32, deadline_ms: u64| LeaseEvent {
        at: Duration::from_millis(at_ms),
        node,
        kind: LeaseEventKind::Grant {
            deadline: Duration::from_millis(deadline_ms),
        },
    };
    let plan = LeasePlan {
        events: vec![
            grant(0, 0, 500),
            grant(0, 1, 60_000),
            grant(0, 2, 60_000),
            grant(0, 3, 60_000),
            LeaseEvent {
                at: Duration::from_millis(580),
                node: 0,
                kind: LeaseEventKind::Revoke,
            },
            grant(580, 4, 60_000),
        ],
        horizon: Duration::from_secs(2),
        capped_grants: 0,
        floor: 0,
    };

    let cfg = HarnessConfig {
        speedup: 1.0,
        max_inflight: 2_048,
        stall_timeout: Duration::from_secs(20),
        ..Default::default()
    };
    let ctl = CapacityController::new(
        &gw,
        plan,
        ControllerConfig {
            drain_headroom: Duration::from_millis(5),
            ..Default::default()
        },
        Instant::now(),
    );
    // run_load_with_controller applies the epoch grants before traffic
    // starts, so the replay never races the initial bring-up.
    let (mut report, stats) = run_load_with_controller(&gw, ctl, &arrivals, &cfg);

    println!("harness: {}", report.summary());
    println!("controller: {stats:?}");

    assert_eq!(report.lost(), 0, "smoke: accepted requests were lost");
    assert!(report.completed > 0, "smoke: nothing completed");
    assert!(report.throughput > 0.0, "smoke: zero throughput");
    assert_eq!(stats.grants, 5, "smoke: plan grants not executed");
    assert!(
        stats.deadline_drains >= 1,
        "smoke: the deadline-led drain did not run: {stats:?}"
    );
    assert_eq!(stats.revokes, 1, "smoke: the revoke did not land");
    hpcwhisk_bench::write_metrics_out(&gw);
    let stranded = gw.shutdown();
    assert_eq!(stranded, 0, "smoke: requests stranded at shutdown");
    let pools = gw.retired_pool_stats();
    assert!(
        pools.containers_conserved(),
        "smoke: container leak: {pools:?}"
    );
    println!(
        "gateway smoke OK: {} completed, 0 lost, 0 stranded, {} deadline drains",
        report.completed, stats.deadline_drains
    );
}
