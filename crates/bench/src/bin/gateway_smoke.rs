//! CI smoke test of the live serving plane: ~2 s of mixed Poisson +
//! diurnal traffic against 4 invokers, one sigterm/restart cycle in the
//! middle, then hard assertions — zero lost requests, nonzero
//! throughput. Exits nonzero on any violation.
//!
//! Run with: `cargo run --release -p hpcwhisk_bench --bin gateway_smoke`

use gateway::{run_load, ActionBody, ActionSpec, Gateway, GatewayConfig, HarnessConfig};
use simcore::SimDuration;
use std::time::Duration;
use workload::{Arrival, DiurnalLoadGen, PoissonLoadGen};

fn main() {
    let horizon = SimDuration::from_millis(1_000);
    // Half the traffic memoryless, half diurnal (one compressed cycle),
    // merged into a single schedule replayed in real time — together
    // about two seconds of wall clock.
    let mut arrivals: Vec<Arrival> = PoissonLoadGen::new(3_000.0, 8).arrivals(horizon, 1);
    arrivals.extend(DiurnalLoadGen::new(500.0, 6_000.0, horizon, 8).arrivals(horizon, 2));
    arrivals.sort_by_key(|a| a.at);

    let gw = Gateway::new(
        GatewayConfig::default(),
        (0..8)
            .map(|i| {
                ActionSpec::noop(&format!("fn-{i}"))
                    .with_body(ActionBody::Spin(Duration::from_micros(5)))
                    .with_cold_start(Duration::from_micros(200))
            })
            .collect(),
    );
    let mut tokens: Vec<_> = (0..4).map(|_| gw.start_invoker()).collect();

    // Churn while loaded: drain one invoker partway through the replay
    // from a helper thread, then bring a replacement up.
    let split = arrivals.partition_point(|a| a.at < simcore::SimTime::from_millis(500));
    let phase1: Vec<Arrival> = arrivals[..split].to_vec();
    let phase2: Vec<Arrival> = arrivals[split..].to_vec();

    let cfg = HarnessConfig {
        speedup: 1.0,
        max_inflight: 2_048,
        stall_timeout: Duration::from_secs(20),
        ..Default::default()
    };
    let mut r1 = run_load(&gw, &phase1, &cfg);
    let victim = tokens.swap_remove(0);
    assert!(gw.sigterm(victim), "sigterm of a healthy invoker");
    gw.join_invoker(victim);
    tokens.push(gw.start_invoker());
    let mut r2 = run_load(&gw, &phase2, &cfg);

    println!("phase 1 (4 invokers): {}", r1.summary());
    println!("phase 2 (drain + replacement): {}", r2.summary());

    let lost = r1.lost() + r2.lost();
    let completed = r1.completed + r2.completed;
    assert_eq!(lost, 0, "smoke: accepted requests were lost");
    assert!(completed > 0, "smoke: nothing completed");
    assert!(
        r1.throughput > 0.0 && r2.throughput > 0.0,
        "smoke: zero throughput"
    );
    let stranded = gw.shutdown();
    assert_eq!(stranded, 0, "smoke: requests stranded at shutdown");
    println!("gateway smoke OK: {completed} completed, 0 lost, 0 stranded");
}
