//! Perf-trajectory probe: times the measured hot paths (scheduler
//! passes at production scale, DES engine dispatch, event queue, broker,
//! offline simulator, the cores→ops/s scaling curve) *without*
//! criterion and writes the results to `BENCH_results.json`, so
//! successive PRs can track the performance trajectory with a single
//! `cargo run --release -p hpcwhisk_bench --bin perf_trajectory`.
//!
//! ```text
//! perf_trajectory [output.json] [--filter PREFIX] [--check]
//! ```
//!
//! `--filter PREFIX` runs only the probes whose name starts with the
//! prefix (e.g. `--filter scheduler/`). `--check` is the CI regression
//! gate: nothing is written, and the process exits nonzero when any
//! probe that ran regresses more than 25% against the checked-in
//! `BENCH_results.json`.
//!
//! Methodology: per hot path, the setup is rebuilt outside the timed
//! region, the routine runs `iters` times, and the reported figure is
//! the **median** over `samples` repetitions (robust to scheduler
//! noise) — except under `--check`, which reports the **minimum**
//! (best-case execution is the most reproducible estimator, so the
//! gate trips on algorithmic regressions, not on a noisy neighbour).
//! Absolute numbers are machine-dependent; the file is a trajectory
//! record, not a cross-machine comparison.

use cluster::{
    AvailabilityTrace, ClusterEvent, ClusterNote, ClusterSim, JobId, JobKind, JobSpec, SlurmConfig,
};
use gateway::{
    run_load, run_load_with_controller, ActionSpec, AdmissionPolicy, CapacityController,
    ControllerConfig, Gateway, GatewayConfig, HarnessConfig, LeaseEvent, LeaseEventKind, LeasePlan,
    TokenBucketCfg,
};
use hpcwhisk_core::offline::{simulate, OfflineConfig};
use hpcwhisk_core::{
    lengths, run_days, DayConfig, DesLeaseSource, DesSourceCfg, FibManager, PilotManager, SizerCfg,
};
use mq::Broker;
use simcore::{Engine, EventQueue, Outbox, SimDuration, SimTime};
use std::hint::black_box;
use std::time::Instant;
use workload::{IdleModel, PoissonLoadGen};

/// True iff `name` passes the `--filter` prefix (or no filter is set).
fn want(filter: &Option<String>, name: &str) -> bool {
    filter.as_deref().is_none_or(|p| name.starts_with(p))
}

struct Probe {
    name: &'static str,
    ns_per_op: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// In `--check` mode the probes report the **minimum** over samples
/// instead of the median: the best-case execution is far more
/// reproducible across runs of a shared/noisy box, so the gate trips on
/// real (algorithmic) regressions — which slow the minimum too — rather
/// than on whoever else was using the CPU during the median sample.
static CHECK_MODE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn estimate(xs: Vec<f64>) -> f64 {
    if CHECK_MODE.load(std::sync::atomic::Ordering::Relaxed) {
        xs.into_iter().fold(f64::MAX, f64::min)
    } else {
        median(xs)
    }
}

/// Parse the `ns_per_op` figures out of a previously written results
/// file (the checked-in `BENCH_results.json`), so the run can print a
/// delta column against it. Hand-rolled: the file is our own fixed
/// shape, and the vendored serde shim has no JSON deserializer.
fn read_baseline(path: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            continue;
        };
        let name = rest[..name_end].to_string();
        let Some(ns_at) = rest.find("\"ns_per_op\": ") else {
            continue;
        };
        let ns_text: String = rest[ns_at + 13..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(ns) = ns_text.parse::<f64>() {
            out.push((name, ns));
        }
    }
    out
}

/// Time `routine` on fresh `setup` output, `iters` ops per sample. The
/// routine takes the input by `&mut`, so fixture teardown happens
/// outside the timed region (mirrors the criterion shim's
/// `iter_batched_ref`). `ops_per_iter` divides the figure for routines
/// that run many homogeneous steps per call (e.g. a churn loop).
fn probe_scaled<I, O>(
    name: &'static str,
    samples: usize,
    iters: usize,
    ops_per_iter: f64,
    mut setup: impl FnMut() -> I,
    mut routine: impl FnMut(&mut I) -> O,
) -> Probe {
    let mut per_sample = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let t = Instant::now();
        for input in inputs.iter_mut() {
            black_box(routine(input));
        }
        per_sample.push(t.elapsed().as_nanos() as f64 / iters as f64 / ops_per_iter);
        drop(inputs);
    }
    let ns = estimate(per_sample);
    eprintln!("{name:<36} {:>12.1} ns/op  ({:>10.1} ops/s)", ns, 1e9 / ns);
    Probe {
        name,
        ns_per_op: ns,
    }
}

/// [`probe_scaled`] with one op per routine call.
fn probe<I, O>(
    name: &'static str,
    samples: usize,
    iters: usize,
    setup: impl FnMut() -> I,
    routine: impl FnMut(&mut I) -> O,
) -> Probe {
    probe_scaled(name, samples, iters, 1.0, setup, routine)
}

/// Invoker-thread count of the gateway probes; the probe names below
/// are spelled to match, so keep them in sync if this ever changes.
const GATEWAY_PROBE_INVOKERS: usize = 8;

/// One serving-plane measurement: drive a live gateway flat out with
/// SeBS no-op actions through the closed-loop harness and report the
/// best sustained throughput (ns/op) plus that run's latency quantiles
/// — throughput probes want the least-disturbed run of `samples`.
fn gateway_run(
    samples: usize,
    drain_batch: usize,
    submit_batch: usize,
    telemetry: bool,
    submitters: usize,
) -> (f64, f64, f64) {
    gateway_run_cfg(
        samples,
        &GatewayConfig {
            drain_batch,
            telemetry,
            ..Default::default()
        },
        submit_batch,
        submitters,
    )
}

/// [`gateway_run`] over an explicit [`GatewayConfig`] — the sharded
/// admission and contention probes vary more than the two knobs the
/// plain signature exposes.
fn gateway_run_cfg(
    samples: usize,
    cfg: &GatewayConfig,
    submit_batch: usize,
    submitters: usize,
) -> (f64, f64, f64) {
    let mut best_ns = f64::MAX;
    let mut best_p50 = f64::MAX;
    let mut best_p99 = f64::MAX;
    for _ in 0..samples {
        let gw = Gateway::new(
            cfg.clone(),
            (0..16)
                .map(|i| ActionSpec::noop(&format!("fn-{i}")))
                .collect(),
        );
        for _ in 0..GATEWAY_PROBE_INVOKERS {
            gw.start_invoker();
        }
        let arrivals = PoissonLoadGen::new(1_000.0, 16).arrivals(SimDuration::from_secs(200), 42);
        let mut report = run_load(
            &gw,
            &arrivals,
            &HarnessConfig {
                speedup: 0.0, // flat out: measure the plane, not the schedule
                max_inflight: 1_024,
                submit_batch,
                submitters,
                ..Default::default()
            },
        );
        assert_eq!(report.lost(), 0, "throughput probe must be lossless");
        let ns = 1e9 / report.throughput;
        if ns < best_ns {
            best_ns = ns;
            best_p50 = report.latency_quantile(0.5) * 1e9;
            best_p99 = report.latency_quantile(0.99) * 1e9;
        }
        gw.shutdown();
    }
    (best_ns, best_p50, best_p99)
}

/// The shaper config of the sharded probes: the token line sits so far
/// above the plane's reach that nothing is ever delayed or shed — what
/// the probes pay for is the *cost* of the sharded admission path (the
/// per-shard CAS line plus rebalance checks), never the shape it
/// enforces. `shards == 1` with `legacy_queues` is exactly the PR 9
/// submit path (single token line, mutex+condvar queues).
fn shaped_cfg(shards: usize, legacy_queues: bool, telemetry: bool) -> GatewayConfig {
    GatewayConfig {
        telemetry,
        admission: AdmissionPolicy::TokenBucket(TokenBucketCfg {
            rate_per_invoker: 10_000_000.0,
            burst: 4_096.0,
            max_delay: std::time::Duration::from_millis(50),
        }),
        admission_shards: shards,
        legacy_queues,
        ..Default::default()
    }
}

/// One contention measurement: the batched flat-out drive with the
/// token-bucket shaper live and telemetry on, reporting
/// `(shaper_cas + queue_wake) / completed` read back from the gateway's
/// own `gateway_submit_contention_total` exposition — the per-op price
/// of the shared submit-path lines, scaled to events **per 1000 ops**
/// so the figure survives the integer `ns_per_op` JSON field. `legacy`
/// selects the PR 9 shape; otherwise the sharded shaper + MPSC rings
/// run. Minimum over samples (the least-disturbed run), like every
/// throughput probe.
fn gateway_contention_run(samples: usize, submitters: usize, legacy: bool) -> f64 {
    let cfg = shaped_cfg(
        if legacy {
            1
        } else {
            GatewayConfig::default().admission_shards
        },
        legacy,
        true,
    );
    let submit_batch = HarnessConfig::default().submit_batch;
    let mut best = f64::MAX;
    let mut best_ns = f64::MAX;
    for _ in 0..samples {
        let gw = Gateway::new(
            cfg.clone(),
            (0..16)
                .map(|i| ActionSpec::noop(&format!("fn-{i}")))
                .collect(),
        );
        for _ in 0..GATEWAY_PROBE_INVOKERS {
            gw.start_invoker();
        }
        let arrivals = PoissonLoadGen::new(1_000.0, 16).arrivals(SimDuration::from_secs(200), 42);
        let report = run_load(
            &gw,
            &arrivals,
            &HarnessConfig {
                speedup: 0.0,
                max_inflight: 1_024,
                submit_batch,
                submitters,
                ..Default::default()
            },
        );
        assert_eq!(report.lost(), 0, "contention probe must be lossless");
        let snap = gw.telemetry().expect("telemetry on").registry().snapshot();
        let count = |src: &str| {
            snap.counter("gateway_submit_contention_total", &[("source", src)])
                .unwrap_or(0)
        };
        let per_kop =
            (count("shaper_cas") + count("queue_wake")) as f64 * 1e3 / report.completed as f64;
        best = best.min(per_kop);
        best_ns = best_ns.min(1e9 / report.throughput);
        gw.shutdown();
    }
    // The paired throughput, for the CI log: a contention win only
    // counts if the shape also held (or improved) its ops/s.
    let shape = if legacy { "legacy" } else { "sharded" };
    eprintln!("  contention leg {submitters}sub/{shape}: {best_ns:.0} ns/op");
    best
}

/// One churn measurement: the same flat-out drive as
/// [`gateway_run`], but while a [`CapacityController`] replays a
/// grant+revoke wave — 8 base leases, 4 more granted mid-run, the 4
/// original leases revoked shortly after — so the probe pays for real
/// router epoch swaps, fast-lane handoffs and completion-shard churn.
/// Returns (ns/op, p99 ns) of the best run; every run must be lossless.
fn gateway_churn_run(samples: usize) -> (f64, f64) {
    let mut best_ns = f64::MAX;
    let mut best_p99 = f64::MAX;
    // Generated once, and before any controller epoch is taken: arrival
    // generation must never eat into the wave's 30/60 ms schedule.
    let arrivals = PoissonLoadGen::new(1_000.0, 16).arrivals(SimDuration::from_secs(400), 42);
    for _ in 0..samples {
        let gw = Gateway::new(
            GatewayConfig::default(),
            (0..16)
                .map(|i| ActionSpec::noop(&format!("fn-{i}")))
                .collect(),
        );
        let far = std::time::Duration::from_secs(100);
        let at = |ms: u64| std::time::Duration::from_millis(ms);
        let mut events: Vec<LeaseEvent> = (0..GATEWAY_PROBE_INVOKERS as u32)
            .map(|node| LeaseEvent {
                at: at(0),
                node,
                kind: LeaseEventKind::Grant { deadline: far },
            })
            .collect();
        // The wave: four extra grants at 30 ms, the original four of
        // the base eight revoked at 60 ms (ending at 8 invokers). Early
        // enough that the wave lands inside the run even on a machine
        // several times faster than this one.
        for i in 0..4u32 {
            events.push(LeaseEvent {
                at: at(30),
                node: GATEWAY_PROBE_INVOKERS as u32 + i,
                kind: LeaseEventKind::Grant { deadline: far },
            });
            events.push(LeaseEvent {
                at: at(60),
                node: i,
                kind: LeaseEventKind::Revoke,
            });
        }
        events.sort_by_key(|e| e.at);
        let plan = LeasePlan {
            events,
            horizon: far,
            capped_grants: 0,
            floor: 0,
        };
        let ctl = CapacityController::new(&gw, plan, ControllerConfig::default(), Instant::now());
        let (mut report, stats) = run_load_with_controller(
            &gw,
            ctl,
            &arrivals,
            &HarnessConfig {
                speedup: 0.0,
                max_inflight: 1_024,
                ..Default::default()
            },
        );
        assert!(stats.revokes >= 1, "the wave must land inside the run");
        assert_eq!(report.lost(), 0, "churn probe must be lossless");
        let ns = 1e9 / report.throughput;
        if ns < best_ns {
            best_ns = ns;
            best_p99 = report.latency_quantile(0.99) * 1e9;
        }
        gw.shutdown();
    }
    (best_ns, best_p99)
}

/// One closed-loop measurement: the same flat-out drive as
/// [`gateway_churn_run`], but the capacity controller runs a live
/// [`DesLeaseSource`] instead of a compiled plan — the 8 base invokers
/// are the source's pinned floor, the cluster DES steps to the wall
/// clock in the background, feedback windows flow every 20 ms, and the
/// pilots the load-sized manager places churn grants/revokes on top.
/// What's measured is the serving plane's throughput while paying for
/// the whole closed loop. Lossless, and the DES must actually grant.
fn gateway_closed_loop_run(samples: usize, submitters: usize) -> f64 {
    let mut best_ns = f64::MAX;
    let arrivals = PoissonLoadGen::new(1_000.0, 16).arrivals(SimDuration::from_secs(400), 42);
    for _ in 0..samples {
        let gw = Gateway::new(
            GatewayConfig::default(),
            (0..16)
                .map(|i| ActionSpec::noop(&format!("fn-{i}")))
                .collect(),
        );
        let src = DesLeaseSource::new(DesSourceCfg {
            n_nodes: 8,
            seed: 7,
            speedup: 1_200.0,
            horizon: SimDuration::from_hours(1), // 3 s wall: outlives the run
            max_leases: 4,
            floor: GATEWAY_PROBE_INVOKERS,
            drain: SimDuration::from_secs(2),
            warmup: None,
            hpc_churn: false,
            sizer: SizerCfg {
                rate_per_invoker: 100_000.0,
                headroom: 1.0,
                backlog_per_invoker: 1e12,
                min_invokers: 1,
                max_invokers: 4,
                alpha: 0.5,
            },
            pilot_len: SimDuration::from_mins(10), // 0.5 s wall: churns mid-run
            ..Default::default()
        });
        let ctl = CapacityController::from_source(
            &gw,
            Box::new(src),
            ControllerConfig {
                feedback_every: Some(std::time::Duration::from_millis(20)),
                ..Default::default()
            },
            Instant::now(),
        );
        let (report, stats) = run_load_with_controller(
            &gw,
            ctl,
            &arrivals,
            &HarnessConfig {
                speedup: 0.0,
                max_inflight: 1_024,
                submitters,
                ..Default::default()
            },
        );
        assert!(
            stats.grants > GATEWAY_PROBE_INVOKERS as u64,
            "the DES never granted a pilot lease on top of the floor"
        );
        assert_eq!(report.lost(), 0, "closed-loop probe must be lossless");
        best_ns = best_ns.min(1e9 / report.throughput);
        gw.shutdown();
    }
    best_ns
}

/// The serving-plane probes: the historical unbatched shape (drain and
/// submit batch 1 — comparable across PRs to the pre-batching
/// baseline), the batched hot path bare *and* instrumented (telemetry
/// registry on — the configuration the plane actually ships with), and
/// the batched hot path under a lease grant+revoke wave (the elasticity
/// baseline). The bare probes keep telemetry off so their trajectory
/// stays comparable to the pre-telemetry baseline.
///
/// Returns the (bare, instrumented) batched ns/op pair for the
/// telemetry-overhead gate. Under `--check` the pair comes from
/// min-of-`samples` **paired** runs — bare and instrumented alternating
/// back to back, so both minima see the same ambient noise and the ≤2%
/// overhead bound gates stably on a shared box.
fn gateway_probes(samples: usize, probes: &mut Vec<Probe>) -> (f64, f64) {
    let drain_batch = GatewayConfig::default().drain_batch;
    let submit_batch = HarnessConfig::default().submit_batch;
    let (ns, p50, p99) = gateway_run(samples, 1, 1, false, 1);
    let (batched_ns, instrumented_ns) = if CHECK_MODE.load(std::sync::atomic::Ordering::Relaxed) {
        let mut bare = f64::MAX;
        let mut inst = f64::MAX;
        for _ in 0..samples {
            bare = bare.min(gateway_run(1, drain_batch, submit_batch, false, 1).0);
            inst = inst.min(gateway_run(1, drain_batch, submit_batch, true, 1).0);
        }
        (bare, inst)
    } else {
        (
            gateway_run(samples, drain_batch, submit_batch, false, 1).0,
            gateway_run(samples, drain_batch, submit_batch, true, 1).0,
        )
    };
    let (churn_ns, churn_p99) = gateway_churn_run(samples);
    let closed_loop_ns = gateway_closed_loop_run(samples, 1);
    for (name, ns) in [
        ("gateway/throughput_8inv_noop", ns),
        ("gateway/latency_p50_8inv_noop", p50),
        ("gateway/latency_p99_8inv_noop", p99),
        ("gateway/throughput_batched_8inv_noop", batched_ns),
        (
            "gateway/throughput_batched_8inv_noop_instrumented",
            instrumented_ns,
        ),
        ("gateway/throughput_churn_8inv_noop", churn_ns),
        ("gateway/latency_p99_churn_8inv_noop", churn_p99),
        ("gateway/throughput_closed_loop_8inv_noop", closed_loop_ns),
    ] {
        eprintln!("{name:<36} {:>12.0} ns/op  ({:>10.1} ops/s)", ns, 1e9 / ns);
        probes.push(Probe {
            name,
            ns_per_op: ns,
        });
    }
    (batched_ns, instrumented_ns)
}

/// The gateway cores→ops/s curve (ISSUE 9): the batched flat-out shape
/// at 1, 2 and 4 parallel submitters (the submit-bound contention
/// probe — admission CAS lines, router shards and queue locks under
/// real multi-thread pressure), plus the closed-loop DES-fed shape at 2
/// submitters (both submitters also collect, so the claim-swept shard
/// table runs contended). Each probe is gated on its **own** name, so
/// `--filter gateway/throughput_batched_8inv_noop_` runs exactly the
/// curve without the rest of the gateway family. On a single-CPU runner
/// the curve is flat (the threads time-share one core); the point of
/// tracking it is the trajectory on wider machines and catching
/// contention regressions that make N submitters *slower* than one.
fn gateway_submitter_probes(samples: usize, probes: &mut Vec<Probe>, filter: &Option<String>) {
    let drain_batch = GatewayConfig::default().drain_batch;
    let submit_batch = HarnessConfig::default().submit_batch;
    for (n_sub, name) in [
        (1usize, "gateway/throughput_batched_8inv_noop_1sub"),
        (2, "gateway/throughput_batched_8inv_noop_2sub"),
        (4, "gateway/throughput_batched_8inv_noop_4sub"),
    ] {
        if !want(filter, name) {
            continue;
        }
        let ns = gateway_run(samples, drain_batch, submit_batch, false, n_sub).0;
        eprintln!("{name:<36} {:>12.0} ns/op  ({:>10.1} ops/s)", ns, 1e9 / ns);
        probes.push(Probe {
            name,
            ns_per_op: ns,
        });
    }
    let name = "gateway/throughput_closed_loop_8inv_noop_2sub";
    if want(filter, name) {
        let ns = gateway_closed_loop_run(samples, 2);
        eprintln!("{name:<36} {:>12.0} ns/op  ({:>10.1} ops/s)", ns, 1e9 / ns);
        probes.push(Probe {
            name,
            ns_per_op: ns,
        });
    }
}

/// ISSUE 10 curve extension. Two probe families:
///
/// - `gateway/throughput_batched_8inv_noop_{1,2,4}sub_sharded`: the
///   submitter curve with the **sharded token-bucket shaper live** on
///   the submit path (rate far above reach — the probes measure the
///   shaper's cost, not its shape). The names share the
///   `gateway/throughput_batched_8inv_noop_` prefix, so the multicore
///   CI gate's existing `--filter` picks them up automatically.
/// - `gateway/contention_{2,4}sub_{sharded,legacy}`: the A/B the
///   tentpole exists for — `(shaper_cas + queue_wake)` events per op
///   for the sharded shaper + MPSC rings vs the PR 9 single-line
///   shaper + mutex queues, measured **paired** (alternating back to
///   back, so both minima see the same ambient noise). Returned as
///   `(n_sub, sharded, legacy)` triples; under `--check` main fails
///   the run unless sharded ≤ legacy. The figures are events per 1000
///   ops, not ns — they ride in the `ns_per_op` field as trajectory
///   data and are exempt from the 25% gate (the A/B is their
///   contract).
fn gateway_sharded_probes(
    samples: usize,
    probes: &mut Vec<Probe>,
    filter: &Option<String>,
) -> Vec<(usize, f64, f64)> {
    let submit_batch = HarnessConfig::default().submit_batch;
    for (n_sub, name) in [
        (1usize, "gateway/throughput_batched_8inv_noop_1sub_sharded"),
        (2, "gateway/throughput_batched_8inv_noop_2sub_sharded"),
        (4, "gateway/throughput_batched_8inv_noop_4sub_sharded"),
    ] {
        if !want(filter, name) {
            continue;
        }
        let cfg = shaped_cfg(GatewayConfig::default().admission_shards, false, false);
        let ns = gateway_run_cfg(samples, &cfg, submit_batch, n_sub).0;
        eprintln!("{name:<36} {:>12.0} ns/op  ({:>10.1} ops/s)", ns, 1e9 / ns);
        probes.push(Probe {
            name,
            ns_per_op: ns,
        });
    }
    let mut pairs = Vec::new();
    for (n_sub, sh_name, lg_name) in [
        (
            2usize,
            "gateway/contention_2sub_sharded",
            "gateway/contention_2sub_legacy",
        ),
        (
            4,
            "gateway/contention_4sub_sharded",
            "gateway/contention_4sub_legacy",
        ),
    ] {
        if !want(filter, sh_name) && !want(filter, lg_name) {
            continue;
        }
        let mut sharded = f64::MAX;
        let mut legacy = f64::MAX;
        for _ in 0..samples {
            sharded = sharded.min(gateway_contention_run(1, n_sub, false));
            legacy = legacy.min(gateway_contention_run(1, n_sub, true));
        }
        for (name, per_kop) in [(sh_name, sharded), (lg_name, legacy)] {
            eprintln!("{name:<36} {per_kop:>12.1} contention events/1000 ops");
            probes.push(Probe {
                name,
                ns_per_op: per_kop,
            });
        }
        pairs.push((n_sub, sharded, legacy));
    }
    pairs
}

/// The scheduler bench fixture: a 2,239-node cluster, ~95% occupied by
/// pinned demand, with a full fib pilot queue pending (mirrors
/// `benches/scheduler.rs`).
fn loaded_cluster() -> ClusterSim {
    let mut sim = ClusterSim::new(SlurmConfig::default(), 2_239, 1);
    let mut out = Outbox::new(SimTime::ZERO);
    let mut notes = Vec::new();
    for n in 0..2_128u32 {
        sim.force_start(
            SimTime::ZERO,
            JobSpec::pinned_demand(
                vec![cluster::NodeId(n)],
                SimTime::ZERO,
                SimTime::ZERO,
                SimDuration::from_hours(8),
                SimDuration::from_hours(7),
            ),
            &mut out,
            &mut notes,
        );
    }
    let mut mgr = FibManager::paper(lengths::A1.to_vec());
    for spec in mgr.replenish(&sim) {
        sim.submit(SimTime::ZERO, spec, &mut out);
    }
    sim
}

fn cluster_pass(ev: ClusterEvent) -> impl FnMut(&mut ClusterSim) -> usize {
    move |sim: &mut ClusterSim| {
        let mut out = Outbox::new(SimTime::ZERO);
        let mut notes = Vec::new();
        sim.handle(SimTime::ZERO, ev.clone(), &mut out, &mut notes);
        notes.len()
    }
}

/// The loaded cluster after one full backfill pass: the persistent
/// scheduling plane is materialized, the pilot queue is placed, and the
/// started pilots are known — the steady state every subsequent pass
/// runs from.
struct WarmCluster {
    sim: ClusterSim,
    running: Vec<JobId>,
    t: SimTime,
}

fn warmed_cluster() -> WarmCluster {
    let mut sim = loaded_cluster();
    let mut out = Outbox::new(SimTime::ZERO);
    let mut notes = Vec::new();
    sim.handle(
        SimTime::ZERO,
        ClusterEvent::BackfillPass,
        &mut out,
        &mut notes,
    );
    let running = notes
        .iter()
        .filter_map(|n| match n {
            ClusterNote::JobStarted { job, .. } if sim.job(*job).spec.kind == JobKind::Pilot => {
                Some(*job)
            }
            _ => None,
        })
        .collect();
    WarmCluster {
        sim,
        running,
        t: SimTime::ZERO,
    }
}

/// `steps` consecutive steady-state passes, 2 s apart: each advances
/// the clock past the quick-pass rate limit, retires and resubmits
/// `churn` pilots (the inter-pass event stream a production cluster
/// feeds the plane), then runs the pass. Reported per pass; with 60
/// steps the chain covers one full 2-minute residue lap, so the
/// wheel-sweep amortization matches sustained operation. What's
/// measured is the churn-proportional cost the tentpole targets:
/// re-anchor + event apply + placement, never an O(nodes) rebuild.
fn steady_passes(
    ev: ClusterEvent,
    churn: usize,
    steps: usize,
) -> impl FnMut(&mut WarmCluster) -> usize {
    move |w: &mut WarmCluster| {
        let mut total = 0usize;
        for _ in 0..steps {
            w.t += SimDuration::from_secs(2);
            let t = w.t;
            let mut out = Outbox::new(t);
            let mut notes = Vec::new();
            for _ in 0..churn {
                if let Some(id) = w.running.pop() {
                    w.sim.pilot_exited(t, id, &mut out, &mut notes);
                }
            }
            for _ in 0..churn {
                w.sim.submit(
                    t,
                    JobSpec::pilot_fixed(SimDuration::from_mins(30), 30),
                    &mut out,
                );
            }
            notes.clear();
            w.sim.handle(t, ev.clone(), &mut out, &mut notes);
            for n in &notes {
                if let ClusterNote::JobStarted { job, .. } = n {
                    if w.sim.job(*job).spec.kind == JobKind::Pilot {
                        w.running.push(*job);
                    }
                }
            }
            total += notes.len();
        }
        total
    }
}

/// The cores→ops/s scaling curve: the same batch of independent day
/// simulations through the `run_days` rayon fan-out under a pinned
/// worker count (1/2/4 via `RAYON_NUM_THREADS`), reported as ns per
/// simulated day. Per-day results are bit-identical across thread
/// counts; only wall-clock moves.
fn scaling_probes(samples: usize, probes: &mut Vec<Probe>, filter: &Option<String>) {
    const N_DAYS: usize = 8;
    let mut model = IdleModel::prometheus_week();
    model.n_nodes = 120;
    model.target_avg_idle = 4.0;
    let days: Vec<(AvailabilityTrace, DayConfig)> = (0..N_DAYS as u64)
        .map(|i| {
            let trace = model.generate(SimDuration::from_hours(4), 17 + i);
            let mut cfg = DayConfig::fib_paper(i);
            cfg.load = None;
            (trace, cfg)
        })
        .collect();
    for (threads, name) in [
        (1usize, "scaling/run_days_8x4h_1t"),
        (2, "scaling/run_days_8x4h_2t"),
        (4, "scaling/run_days_8x4h_4t"),
    ] {
        if !want(filter, name) {
            continue;
        }
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        let mut per_sample = Vec::with_capacity(samples);
        for _ in 0..samples {
            let batch = days.clone();
            let t = Instant::now();
            black_box(run_days(batch));
            per_sample.push(t.elapsed().as_nanos() as f64 / N_DAYS as f64);
        }
        std::env::remove_var("RAYON_NUM_THREADS");
        let ns = median(per_sample);
        eprintln!("{name:<36} {:>12.0} ns/op  ({:>10.2} ops/s)", ns, 1e9 / ns);
        probes.push(Probe {
            name,
            ns_per_op: ns,
        });
    }
}

fn main() {
    let mut out_path = "BENCH_results.json".to_string();
    let mut filter: Option<String> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--filter" => {
                filter = Some(args.next().unwrap_or_else(|| {
                    eprintln!("error: --filter needs a prefix");
                    std::process::exit(2);
                }));
            }
            _ => out_path = a,
        }
    }
    CHECK_MODE.store(check, std::sync::atomic::Ordering::Relaxed);
    // The delta column always compares against the checked-in
    // trajectory (read before the overwrite below when out_path is the
    // default), never against a previous run's scratch output — a
    // repeated run to the same path must not mask drift.
    let baseline = read_baseline("BENCH_results.json");
    if !check {
        // Fail fast on an unwritable destination — the probes below
        // take a while and their results would be lost.
        if let Err(e) = std::fs::write(&out_path, "{}\n") {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(2);
        }
    }
    let mut probes = Vec::new();

    // Steady-state scheduler passes: warmed persistent plane, 8 pilot
    // retire+resubmit events between passes — the production shape the
    // tentpole optimizes. The plane re-anchors and patches; it never
    // rebuilds.
    if want(&filter, "scheduler/backfill_pass_2239_nodes") {
        probes.push(probe_scaled(
            "scheduler/backfill_pass_2239_nodes",
            9,
            3,
            60.0,
            warmed_cluster,
            steady_passes(ClusterEvent::BackfillPass, 8, 60),
        ));
    }
    if want(&filter, "scheduler/quick_pass_2239_nodes") {
        probes.push(probe_scaled(
            "scheduler/quick_pass_2239_nodes",
            9,
            3,
            60.0,
            warmed_cluster,
            steady_passes(ClusterEvent::QuickPass, 8, 60),
        ));
    }
    // The zero-churn floor: event-free backfill passes on the warmed
    // plane (re-anchor + wheel sweep only — nothing to place).
    if want(&filter, "scheduler/persistent_pass_2239_nodes") {
        probes.push(probe_scaled(
            "scheduler/persistent_pass_2239_nodes",
            9,
            3,
            60.0,
            warmed_cluster,
            steady_passes(ClusterEvent::BackfillPass, 0, 60),
        ));
    }
    // The same zero-churn floor with per-pass span timing enabled: the
    // observable cost of the four `Instant::now` laps per pass, and the
    // figure the scraped span families should be read against.
    if want(&filter, "scheduler/persistent_pass_2239_nodes_spans") {
        probes.push(probe_scaled(
            "scheduler/persistent_pass_2239_nodes_spans",
            9,
            3,
            60.0,
            || {
                let mut w = warmed_cluster();
                w.sim.enable_pass_spans();
                w
            },
            steady_passes(ClusterEvent::BackfillPass, 0, 60),
        ));
    }
    if want(&filter, "scheduler/poll_sample_2239_nodes") {
        // One poll is ~10 µs — far too short a timed region to survive
        // timer granularity and scheduling noise on shared runners, so
        // run 64 per routine call and report the amortized figure.
        probes.push(probe_scaled(
            "scheduler/poll_sample_2239_nodes",
            9,
            3,
            64.0,
            loaded_cluster,
            |sim: &mut ClusterSim| {
                let mut pass = cluster_pass(ClusterEvent::Poll);
                (0..64).map(|_| pass(sim)).sum::<usize>()
            },
        ));
    }
    if want(&filter, "scheduler/placement_churn_2239_nodes") {
        probes.push(probe_scaled(
            "scheduler/placement_churn_2239_nodes",
            9,
            3,
            4_096.0,
            || cluster::Timeline::new(SimTime::ZERO, SimDuration::from_mins(2), 60, 2_239),
            // 4,096 indexed placements with releases and window advances
            // mixed in (the canonical shape pinned by the
            // `deterministic_churn_like_the_probe` test); reported per
            // churn step.
            |tl: &mut cluster::Timeline| tl.run_deterministic_churn(4_096),
        ));
    }
    // The FirstFit flavour, pinned since the lowest-populated-bucket
    // hint made it O(1) amortized like BestFit.
    if want(&filter, "scheduler/placement_churn_firstfit_2239") {
        probes.push(probe_scaled(
            "scheduler/placement_churn_firstfit_2239",
            9,
            3,
            4_096.0,
            || cluster::Timeline::new(SimTime::ZERO, SimDuration::from_mins(2), 60, 2_239),
            |tl: &mut cluster::Timeline| {
                tl.run_deterministic_churn_with(4_096, cluster::FitPolicy::FirstFit)
            },
        ));
    }
    if want(&filter, "engine/ping_chain_100k") {
        probes.push(probe(
            "engine/ping_chain_100k",
            7,
            1,
            || (),
            |_: &mut ()| {
                let mut engine: Engine<u32> = Engine::new();
                engine.schedule(SimTime::ZERO, 0u32);
                let mut count = 0u64;
                engine.run_until(
                    SimTime::from_secs(100_000),
                    &mut |_now: SimTime, ev: u32, out: &mut Outbox<u32>| {
                        count += 1;
                        if count < 100_000 {
                            out.after(SimDuration::from_millis(1_000), ev.wrapping_add(1));
                        }
                    },
                );
                count
            },
        ));
    }
    if want(&filter, "event_queue/push_pop_10k") {
        probes.push(probe(
            "event_queue/push_pop_10k",
            9,
            5,
            EventQueue::<u64>::new,
            |q: &mut EventQueue<u64>| {
                for i in 0..10_000u64 {
                    q.push(SimTime::from_millis((i * 7919) % 100_000), i);
                }
                let mut acc = 0u64;
                while let Some((_, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                }
                acc
            },
        ));
    }
    if want(&filter, "broker/produce_fetch_10k") {
        probes.push(probe(
            "broker/produce_fetch_10k",
            9,
            5,
            || {
                let mut br: Broker<u64> = Broker::new();
                let t = br.create_topic("t");
                (br, t)
            },
            |input| {
                let (br, t) = input;
                for i in 0..10_000u64 {
                    br.produce(*t, SimTime::ZERO, i);
                }
                let mut acc = 0u64;
                while !br.fetch(*t, 64).is_empty() {
                    acc += 1;
                }
                acc
            },
        ));
    }
    if want(&filter, "offline/simulate_A1_day") {
        let trace = IdleModel::prometheus_week().generate(SimDuration::from_hours(24), 42);
        probes.push(probe(
            "offline/simulate_A1_day",
            7,
            1,
            || (),
            |_: &mut ()| simulate(&trace, &OfflineConfig::table1(lengths::A1.to_vec())).n_jobs,
        ));
    }
    if want(&filter, "offline/simulate_A1_week") {
        let week = IdleModel::prometheus_week().generate(SimDuration::from_hours(24 * 7), 42);
        probes.push(probe(
            "offline/simulate_A1_week",
            7,
            1,
            || (),
            |_: &mut ()| simulate(&week, &OfflineConfig::table1(lengths::A1.to_vec())).n_jobs,
        ));
    }
    let mut telem_pair: Option<(f64, f64)> = None;
    if want(&filter, "gateway/") {
        telem_pair = Some(gateway_probes(5, &mut probes));
    }
    gateway_submitter_probes(5, &mut probes, &filter);
    let contention_pairs = gateway_sharded_probes(5, &mut probes, &filter);
    scaling_probes(3, &mut probes, &filter);

    if probes.is_empty() {
        eprintln!("error: no probe matches the filter");
        std::process::exit(2);
    }

    if !check {
        let mut json = String::from("{\n  \"probes\": [\n");
        for (i, p) in probes.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_op\": {:.0}, \"ops_per_sec\": {:.2}}}{}\n",
                p.name,
                p.ns_per_op,
                1e9 / p.ns_per_op,
                if i + 1 < probes.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&out_path, json).expect("write results file");
    }

    // Delta column against the checked-in trajectory: ratio > 1 is a
    // speed-up, < 1 a regression — visible in CI logs without diffing
    // JSON.
    let mut regressions = Vec::new();
    if !baseline.is_empty() {
        eprintln!(
            "\n{:<36} {:>12} {:>12} {:>8}",
            "probe", "old ns", "new ns", "delta"
        );
        for p in &probes {
            match baseline.iter().find(|(n, _)| n == p.name) {
                Some((_, old)) => {
                    let ratio = old / p.ns_per_op;
                    let marker = if ratio < 0.9 { "  <-- regression" } else { "" };
                    eprintln!(
                        "{:<36} {:>12.0} {:>12.0} {:>7.2}x{marker}",
                        p.name, old, p.ns_per_op, ratio
                    );
                    // The CI gate: >25% slower than the checked-in
                    // trajectory fails the run. Latency-quantile probes
                    // are exempt: a p99 is a single tail observation
                    // from the best-throughput run, and swings several
                    // x between idle-box runs — it is trajectory data,
                    // not a gateable contract (the throughput minima
                    // gate the same code paths stably). Contention
                    // probes are likewise exempt: their events/op
                    // figures swing with box sharing, and their
                    // contract is the in-run sharded≤legacy A/B below,
                    // not the cross-PR trajectory.
                    if p.ns_per_op > old * 1.25
                        && !p.name.contains("/latency_")
                        && !p.name.contains("/contention_")
                    {
                        regressions.push((p.name, *old, p.ns_per_op));
                    }
                }
                None => {
                    eprintln!("{:<36} {:>12} {:>12.0}     new", p.name, "-", p.ns_per_op);
                }
            }
        }
    }
    if check {
        // The telemetry budget: the instrumented batched hot path must
        // stay within 2% of the bare one (paired minima, see
        // `gateway_probes`).
        if let Some((bare, inst)) = telem_pair {
            let overhead = (inst / bare - 1.0) * 100.0;
            eprintln!("\ntelemetry overhead, batched hot path (paired minima): {overhead:+.2}%");
            if inst > bare * 1.02 {
                eprintln!(
                    "telemetry overhead gate failed: instrumented {inst:.0} ns/op vs bare {bare:.0} ns/op (>2%)"
                );
                std::process::exit(1);
            }
        }
        // The sharded-shaper contract: de-serializing the submit path
        // must not *add* contention — the sharded plane's
        // (shaper_cas + queue_wake) per op may not exceed the PR 9
        // legacy shape measured back to back in this same run. A small
        // absolute epsilon keeps near-zero single-core measurements
        // (where both shapes are contention-free) from flaking.
        for (n_sub, sharded, legacy) in &contention_pairs {
            eprintln!(
                "contention per 1000 ops ({n_sub}sub): sharded {sharded:.1} vs legacy {legacy:.1}"
            );
            if *sharded > legacy * 1.05 + 10.0 {
                eprintln!(
                    "contention gate failed ({n_sub}sub): sharded submit path has more \
                     shaper_cas+queue_wake per op than the legacy shape"
                );
                std::process::exit(1);
            }
        }
        if !regressions.is_empty() {
            eprintln!("\n{} probe(s) regressed >25%:", regressions.len());
            for (name, old, new) in &regressions {
                eprintln!("  {name}: {old:.0} ns -> {new:.0} ns");
            }
            std::process::exit(1);
        }
        eprintln!("\ncheck passed: no probe regressed >25%");
        return;
    }
    eprintln!("\nwrote {out_path}");
}
