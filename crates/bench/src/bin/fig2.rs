//! Fig. 2 (§I): CDFs of user-declared time limits, actual runtimes and
//! the slack between them, for the synthetic HPC job stream calibrated
//! to Prometheus (74k non-commercial jobs in the monitored week).

use hpcwhisk_bench::{quick_mode, section, Comparison};
use metrics::Cdf;
use simcore::SimRng;
use workload::HpcWorkloadModel;

fn main() {
    let n_jobs: usize = if quick_mode() { 5_000 } else { 74_000 };
    let model = HpcWorkloadModel::prometheus();
    let mut rng = SimRng::seed_from_u64(2022);

    let mut limits = Cdf::new();
    let mut runtimes = Cdf::new();
    let mut slack = Cdf::new();
    let mut sizes = Cdf::new();
    for _ in 0..n_jobs {
        let j = model.sample_job(&mut rng);
        let lim = j.time_limit.as_mins_f64();
        let rt = j
            .actual_runtime
            .expect("hpc jobs have runtimes")
            .as_mins_f64();
        limits.add(lim);
        runtimes.add(rt);
        slack.add(lim - rt);
        sizes.add(j.nodes as f64);
    }

    section("Fig 2: CDFs of limits (green), runtimes (blue), slack (orange) [minutes]");
    println!("percentile | limit | runtime | slack");
    for p in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95] {
        println!(
            "{:>9.0}% | {:>6.0} | {:>7.1} | {:>6.1}",
            p * 100.0,
            limits.quantile(p),
            runtimes.quantile(p),
            slack.quantile(p)
        );
    }
    println!(
        "\njob sizes: median {} nodes, p90 {} nodes, max {} nodes",
        sizes.quantile(0.5),
        sizes.quantile(0.9),
        sizes.max()
    );

    section("Paper vs measured");
    let mut c = Comparison::new();
    c.add("jobs generated", 74_000.0, n_jobs as f64);
    c.add("median declared limit min", 60.0, limits.median());
    c.add(
        "share declaring >= 15 min %",
        95.0,
        limits.fraction_gt(15.0 - 1e-9) * 100.0,
    );
    c.add_str(
        "runtime CDF left of limit CDF",
        "yes",
        if runtimes.median() < limits.median() {
            "yes"
        } else {
            "NO"
        },
    );
    c.add_str(
        "substantial slack",
        "yes",
        if slack.median() > 10.0 { "yes" } else { "NO" },
    );
    println!("{}", c.render());
}
