//! Fig. 3 (§I): the worked example — 4 HPC jobs on 5 nodes, scheduled
//! to minimize the maximum completion time, leaving idle gaps that
//! short pilot jobs (lengths 2/4/6/10 min) then fill.
//!
//! We search list schedules over all job permutations for the minimal
//! makespan, print the schedule, and run the clairvoyant filler over the
//! remaining idle surface. DESIGN.md §7 documents the known deviation:
//! the text's "average number of idle nodes is 1.2" is not reachable by
//! any makespan-minimal schedule of the four stated jobs (ours achieves
//! 16 idle node-minutes over an 18-minute makespan ≈ 0.89).

use cluster::AvailabilityTrace;
use hpcwhisk_bench::{section, Comparison};
use hpcwhisk_core::offline::{simulate, OfflineConfig};
use simcore::{SimDuration, SimTime};

/// (nodes, minutes) of the §I example jobs.
const JOBS: [(u32, u64); 4] = [(3, 5), (1, 13), (2, 7), (4, 8)];
const N_NODES: usize = 5;

/// One placed job: `(job index, start, end, nodes)`.
type PlacedJob = (usize, u64, u64, Vec<usize>);

/// A list schedule: jobs placed in the given order, each at the
/// earliest time enough nodes are simultaneously free.
fn list_schedule(order: &[usize]) -> (u64, Vec<PlacedJob>) {
    // free_at[n] = when node n becomes free.
    let mut free_at = [0u64; N_NODES];
    let mut placed = Vec::new();
    for &j in order {
        let (need, dur) = JOBS[j];
        // Candidate start: the need-th smallest free time.
        let mut times: Vec<u64> = free_at.to_vec();
        times.sort_unstable();
        let start = times[need as usize - 1];
        // Pick the `need` nodes free earliest (ties by index).
        let mut idx: Vec<usize> = (0..N_NODES).collect();
        idx.sort_by_key(|n| (free_at[*n], *n));
        let chosen: Vec<usize> = idx.into_iter().take(need as usize).collect();
        for &n in &chosen {
            free_at[n] = start + dur;
        }
        placed.push((j, start, start + dur, chosen));
    }
    let makespan = free_at.iter().copied().max().unwrap();
    (makespan, placed)
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut all = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    permute(&mut items, 0, &mut all);
    all
}

fn permute(items: &mut Vec<usize>, k: usize, all: &mut Vec<Vec<usize>>) {
    if k == items.len() {
        all.push(items.clone());
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, all);
        items.swap(k, i);
    }
}

fn main() {
    // 1. Exhaustive list-scheduling over the 24 permutations.
    let (mut best_makespan, mut best) = (u64::MAX, Vec::new());
    for order in permutations(4) {
        let (m, placed) = list_schedule(&order);
        if m < best_makespan {
            best_makespan = m;
            best = placed;
        }
    }

    section("Fig 3: minimal-makespan schedule of the example jobs");
    println!("job | nodes | minutes | start | end | placed on");
    for (j, s, e, nodes) in &best {
        println!(
            " #{} | {:>5} | {:>7} | {:>5} | {:>3} | {:?}",
            j + 1,
            JOBS[*j].0,
            JOBS[*j].1,
            s,
            e,
            nodes
        );
    }
    println!("makespan: {best_makespan} minutes");

    // 2. Idle surface of the schedule.
    let mut busy_until = vec![Vec::<(u64, u64)>::new(); N_NODES];
    for (_, s, e, nodes) in &best {
        for &n in nodes {
            busy_until[n].push((*s, *e));
        }
    }
    let mut idle_surface = 0u64;
    let mut per_node_gaps: Vec<Vec<(SimTime, SimTime)>> = Vec::new();
    for node in &mut busy_until {
        node.sort_unstable();
        let mut gaps = Vec::new();
        let mut cursor = 0u64;
        for (s, e) in node.iter() {
            if *s > cursor {
                gaps.push((SimTime::from_mins(cursor), SimTime::from_mins(*s)));
                idle_surface += s - cursor;
            }
            cursor = cursor.max(*e);
        }
        if best_makespan > cursor {
            gaps.push((
                SimTime::from_mins(cursor),
                SimTime::from_mins(best_makespan),
            ));
            idle_surface += best_makespan - cursor;
        }
        per_node_gaps.push(gaps);
    }
    let avg_idle = idle_surface as f64 / best_makespan as f64;
    println!("idle surface: {idle_surface} node-minutes; average idle nodes: {avg_idle:.2}");

    // 3. Fill the gaps with the §I pilot lengths {2,4,6,10}.
    let trace = AvailabilityTrace::from_intervals(
        SimTime::ZERO,
        SimTime::from_mins(best_makespan),
        per_node_gaps,
    );
    let rep = simulate(
        &trace,
        &OfflineConfig {
            lengths_mins: vec![2, 4, 6, 10],
            warmup: SimDuration::from_secs(20),
        },
    );

    section("Pilot fill of the idle gaps (lengths 2/4/6/10, 20 s warm-up)");
    println!(
        "pilot jobs placed: {}; warm-up {:.1}% / ready {:.1}% / unused {:.1}%",
        rep.n_jobs,
        rep.warmup_share * 100.0,
        rep.ready_share * 100.0,
        rep.unused_share * 100.0
    );

    section("Paper vs measured");
    let mut c = Comparison::new();
    c.add_str("schedule minimizes makespan", "yes", "yes (exhaustive)");
    c.add("average idle nodes", 1.2, avg_idle);
    c.add(
        "share of idle slots covered by ready invokers %",
        83.0,
        rep.ready_share * 100.0,
    );
    println!("{}", c.render());
    println!(
        "note: the paper's figure shows a non-optimal layout (node 5 idle \
         until minute 12); with the truly minimal makespan of {best_makespan} \
         minutes the idle average is {avg_idle:.2} — see DESIGN.md §7."
    );
}
