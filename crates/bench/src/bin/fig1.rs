//! Fig. 1 (§I): analysis of the cluster's idle-node process over one
//! week — (a) CDF of the number of idle nodes, (b) CDF of idle-period
//! lengths, (c) the time series — regenerated from the calibrated
//! statistical idle model.

use hpcwhisk_bench::{quick_mode, section, Comparison};
use metrics::Cdf;
use simcore::{SimDuration, SimTime};
use workload::IdleModel;

fn main() {
    let mut model = IdleModel::prometheus_week();
    let hours = if quick_mode() {
        model.n_nodes = 300;
        model.target_avg_idle = 4.0;
        24
    } else {
        7 * 24
    };
    let trace = model.generate(SimDuration::from_hours(hours), 42);
    let series = trace.count_series();
    let (t0, t1) = (trace.start, trace.end);

    section("Fig 1a: CDF of the number of idle nodes");
    println!("percentile | idle nodes");
    let mut counts = Cdf::new();
    for (t, _) in series.sample_every(t0, t1, SimDuration::from_secs(10)) {
        counts.add(series.value_at(t));
    }
    for p in [0.1, 0.2, 0.25, 0.5, 0.75, 0.8, 0.9, 0.99] {
        println!("{:>9.0}% | {:>6.0}", p * 100.0, counts.quantile(p));
    }

    section("Fig 1b: CDF of idle-period lengths (minutes)");
    let mut lens = trace.interval_length_mins();
    println!("percentile | minutes");
    for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        println!("{:>9.0}% | {:>7.2}", p * 100.0, lens.quantile(p));
    }

    section("Fig 1c: idle nodes over time (6-hour averages and maxima)");
    println!("window | avg idle | max idle");
    let mut t = t0;
    while t < t1 {
        let t2 = {
            let n = t + SimDuration::from_hours(6);
            if n < t1 {
                n
            } else {
                t1
            }
        };
        let max = series
            .sample_every(t, t2, SimDuration::from_mins(1))
            .into_iter()
            .map(|(_, v)| v)
            .fold(0.0f64, f64::max);
        println!(
            "{:>5.0}h | {:>8.2} | {:>8.0}",
            t.as_hours_f64(),
            series.time_avg(t, t2),
            max
        );
        t = t2;
    }

    section("Paper vs measured (Fig 1 headline statistics)");
    let zero_frac = series.fraction_where(t0, t1, |v| v == 0.0);
    let longest_zero = series.longest_run(t0, t1, |v| v == 0.0);
    let node_hours = trace.total_available().as_secs_f64() / 3600.0;
    let mut c = Comparison::new();
    c.add("avg idle nodes", 9.23, series.time_avg(t0, t1));
    c.add("p25 idle nodes", 2.0, counts.quantile(0.25));
    c.add("median idle nodes", 5.0, counts.quantile(0.5));
    c.add("~80th pctile idle nodes", 13.0, counts.quantile(0.8));
    c.add("zero-idle share %", 10.11, zero_frac * 100.0);
    c.add(
        "longest zero-idle h",
        1.55,
        longest_zero.as_secs_f64() / 3600.0,
    );
    c.add("median idle period min", 2.0, lens.median());
    c.add("p75 idle period min", 4.0, lens.quantile(0.75));
    c.add("mean idle period min", 5.0, lens.mean());
    c.add(
        "P(idle period > 23 min) %",
        5.0,
        lens.fraction_gt(23.0) * 100.0,
    );
    c.add(
        "idle surface core-hours (24-core nodes)",
        37_000.0,
        node_hours * 24.0,
    );
    println!("{}", c.render());
    let _ = SimTime::ZERO;
}
