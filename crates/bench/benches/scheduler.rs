//! Benchmarks of the Slurm-like scheduler at production scale: a
//! 2,239-node cluster processing a backfill pass with a 100-deep pilot
//! queue — the operation whose cadence bounds the whole day simulation.

use cluster::{ClusterEvent, ClusterSim, JobSpec, SlurmConfig, Timeline};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hpcwhisk_core::{lengths, FibManager, PilotManager};
use simcore::{Outbox, SimDuration, SimTime};
use std::hint::black_box;

/// A 2,239-node cluster, ~95% occupied by HPC jobs, with a full pilot
/// queue waiting.
fn loaded_cluster() -> ClusterSim {
    let mut sim = ClusterSim::new(SlurmConfig::default(), 2_239, 1);
    let mut out = Outbox::new(SimTime::ZERO);
    let mut notes = Vec::new();
    // Occupy most nodes with pinned demand.
    for n in 0..2_128u32 {
        sim.force_start(
            SimTime::ZERO,
            JobSpec::pinned_demand(
                vec![cluster::NodeId(n)],
                SimTime::ZERO,
                SimTime::ZERO,
                SimDuration::from_hours(8),
                SimDuration::from_hours(7),
            ),
            &mut out,
            &mut notes,
        );
    }
    // Fill the pilot queue the way the fib manager would.
    let mut mgr = FibManager::paper(lengths::A1.to_vec());
    for spec in mgr.replenish(&sim) {
        sim.submit(SimTime::ZERO, spec, &mut out);
    }
    sim
}

fn bench_passes(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(20);
    g.bench_function("backfill_pass_2239_nodes", |b| {
        b.iter_batched_ref(
            loaded_cluster,
            |sim| {
                let mut out = Outbox::new(SimTime::ZERO);
                let mut notes = Vec::new();
                sim.handle(
                    SimTime::ZERO,
                    ClusterEvent::BackfillPass,
                    &mut out,
                    &mut notes,
                );
                black_box(notes.len())
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("quick_pass_2239_nodes", |b| {
        b.iter_batched_ref(
            loaded_cluster,
            |sim| {
                let mut out = Outbox::new(SimTime::ZERO);
                let mut notes = Vec::new();
                sim.handle(SimTime::ZERO, ClusterEvent::QuickPass, &mut out, &mut notes);
                black_box(notes.len())
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("placement_churn_2239_nodes", |b| {
        // 4,096 run-length-indexed placements per iteration with
        // releases and window advances mixed in — the index's O(1)
        // amortized claim/release/advance contract under sustained
        // churn (the canonical stream shared with the perf_trajectory
        // probe and pinned by the placement_churn regression test).
        b.iter_batched_ref(
            || Timeline::new(SimTime::ZERO, SimDuration::from_mins(2), 60, 2_239),
            |tl| black_box(tl.run_deterministic_churn(4_096)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("poll_sample_2239_nodes", |b| {
        b.iter_batched_ref(
            loaded_cluster,
            |sim| {
                let mut out = Outbox::new(SimTime::ZERO);
                let mut notes = Vec::new();
                sim.handle(SimTime::ZERO, ClusterEvent::Poll, &mut out, &mut notes);
                black_box(notes.len())
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
