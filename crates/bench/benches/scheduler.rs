//! Benchmarks of the Slurm-like scheduler at production scale: a
//! 2,239-node cluster processing a backfill pass with a 100-deep pilot
//! queue — the operation whose cadence bounds the whole day simulation.

use cluster::{
    ClusterEvent, ClusterNote, ClusterSim, JobId, JobKind, JobSpec, SlurmConfig, Timeline,
};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hpcwhisk_core::{lengths, FibManager, PilotManager};
use simcore::{Outbox, SimDuration, SimTime};
use std::hint::black_box;

/// A 2,239-node cluster, ~95% occupied by HPC jobs, with a full pilot
/// queue waiting.
fn loaded_cluster() -> ClusterSim {
    let mut sim = ClusterSim::new(SlurmConfig::default(), 2_239, 1);
    let mut out = Outbox::new(SimTime::ZERO);
    let mut notes = Vec::new();
    // Occupy most nodes with pinned demand.
    for n in 0..2_128u32 {
        sim.force_start(
            SimTime::ZERO,
            JobSpec::pinned_demand(
                vec![cluster::NodeId(n)],
                SimTime::ZERO,
                SimTime::ZERO,
                SimDuration::from_hours(8),
                SimDuration::from_hours(7),
            ),
            &mut out,
            &mut notes,
        );
    }
    // Fill the pilot queue the way the fib manager would.
    let mut mgr = FibManager::paper(lengths::A1.to_vec());
    for spec in mgr.replenish(&sim) {
        sim.submit(SimTime::ZERO, spec, &mut out);
    }
    sim
}

/// The loaded cluster with its persistent scheduling plane warmed by
/// one full backfill pass, plus the pilots that pass started.
fn warmed_cluster() -> (ClusterSim, Vec<JobId>, SimTime) {
    let mut sim = loaded_cluster();
    let mut out = Outbox::new(SimTime::ZERO);
    let mut notes = Vec::new();
    sim.handle(
        SimTime::ZERO,
        ClusterEvent::BackfillPass,
        &mut out,
        &mut notes,
    );
    let running = notes
        .iter()
        .filter_map(|n| match n {
            ClusterNote::JobStarted { job, .. } if sim.job(*job).spec.kind == JobKind::Pilot => {
                Some(*job)
            }
            _ => None,
        })
        .collect();
    (sim, running, SimTime::ZERO)
}

fn bench_passes(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(20);
    // Cold pass: the plane is built from scratch (first pass of a run).
    g.bench_function("backfill_pass_2239_nodes", |b| {
        b.iter_batched_ref(
            loaded_cluster,
            |sim| {
                let mut out = Outbox::new(SimTime::ZERO);
                let mut notes = Vec::new();
                sim.handle(
                    SimTime::ZERO,
                    ClusterEvent::BackfillPass,
                    &mut out,
                    &mut notes,
                );
                black_box(notes.len())
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("quick_pass_2239_nodes", |b| {
        b.iter_batched_ref(
            loaded_cluster,
            |sim| {
                let mut out = Outbox::new(SimTime::ZERO);
                let mut notes = Vec::new();
                sim.handle(SimTime::ZERO, ClusterEvent::QuickPass, &mut out, &mut notes);
                black_box(notes.len())
            },
            BatchSize::LargeInput,
        )
    });
    // Steady state: 60 chained passes (one full 2-minute residue lap),
    // 8 pilot retire+resubmit events between passes — the persistent
    // plane re-anchors and patches instead of rebuilding, so the
    // per-pass cost tracks events, not nodes. Reported per 60-pass
    // chain; divide by 60 to compare with the probe's per-pass figure.
    g.bench_function("persistent_pass_churn_2239_nodes", |b| {
        b.iter_batched_ref(
            warmed_cluster,
            |(sim, running, t)| {
                let mut started = 0usize;
                for _ in 0..60 {
                    *t += SimDuration::from_secs(2);
                    let mut out = Outbox::new(*t);
                    let mut notes = Vec::new();
                    for _ in 0..8 {
                        if let Some(id) = running.pop() {
                            sim.pilot_exited(*t, id, &mut out, &mut notes);
                        }
                    }
                    for _ in 0..8 {
                        sim.submit(
                            *t,
                            JobSpec::pilot_fixed(SimDuration::from_mins(30), 30),
                            &mut out,
                        );
                    }
                    notes.clear();
                    sim.handle(*t, ClusterEvent::BackfillPass, &mut out, &mut notes);
                    for n in &notes {
                        if let ClusterNote::JobStarted { job, .. } = n {
                            if sim.job(*job).spec.kind == JobKind::Pilot {
                                running.push(*job);
                            }
                        }
                    }
                    started += notes.len();
                }
                black_box(started)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("placement_churn_2239_nodes", |b| {
        // 4,096 run-length-indexed placements per iteration with
        // releases and window advances mixed in — the index's O(1)
        // amortized claim/release/advance contract under sustained
        // churn (the canonical stream shared with the perf_trajectory
        // probe and pinned by the placement_churn regression test).
        b.iter_batched_ref(
            || Timeline::new(SimTime::ZERO, SimDuration::from_mins(2), 60, 2_239),
            |tl| black_box(tl.run_deterministic_churn(4_096)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("poll_sample_2239_nodes", |b| {
        b.iter_batched_ref(
            loaded_cluster,
            |sim| {
                let mut out = Outbox::new(SimTime::ZERO);
                let mut notes = Vec::new();
                sim.handle(SimTime::ZERO, ClusterEvent::Poll, &mut out, &mut notes);
                black_box(notes.len())
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_passes);
criterion_main!(benches);
