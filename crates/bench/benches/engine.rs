//! Microbenchmarks of the DES engine: event-queue throughput and the
//! dispatch loop — the substrate every experiment's wall-time rests on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simcore::{Engine, EventQueue, Outbox, SimDuration, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("push_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    q.push(SimTime::from_millis((i * 7919) % 100_000), i);
                }
                let mut acc = 0u64;
                while let Some((_, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_engine_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("ping_chain_100k", |b| {
        b.iter(|| {
            let mut engine: Engine<u32> = Engine::new();
            engine.schedule(SimTime::ZERO, 0u32);
            let mut count = 0u64;
            engine.run_until(
                SimTime::from_secs(100_000),
                &mut |_now: SimTime, ev: u32, out: &mut Outbox<u32>| {
                    count += 1;
                    if count < 100_000 {
                        out.after(SimDuration::from_millis(1_000), ev.wrapping_add(1));
                    }
                },
            );
            black_box(count)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_engine_dispatch
}
criterion_main!(benches);
