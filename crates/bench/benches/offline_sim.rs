//! Benchmarks of the clairvoyant offline simulator and the idle-trace
//! generator — together they produce Table I, so their speed determines
//! how many calibration sweeps are affordable.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcwhisk_core::lengths;
use hpcwhisk_core::offline::{simulate, OfflineConfig};
use simcore::SimDuration;
use std::hint::black_box;
use workload::IdleModel;

fn bench_offline(c: &mut Criterion) {
    let trace = IdleModel::prometheus_week().generate(SimDuration::from_hours(24), 42);
    let mut group = c.benchmark_group("offline");
    group.sample_size(20);
    group.bench_function("simulate_A1_day", |b| {
        b.iter(|| black_box(simulate(&trace, &OfflineConfig::table1(lengths::A1.to_vec())).n_jobs))
    });
    group.bench_function("simulate_C2_day", |b| {
        b.iter(|| black_box(simulate(&trace, &OfflineConfig::table1(lengths::c2())).n_jobs))
    });
    let week = IdleModel::prometheus_week().generate(SimDuration::from_hours(24 * 7), 42);
    group.bench_function("simulate_A1_week", |b| {
        b.iter(|| black_box(simulate(&week, &OfflineConfig::table1(lengths::A1.to_vec())).n_jobs))
    });
    group.finish();

    let mut group = c.benchmark_group("tracegen");
    group.sample_size(10);
    group.bench_function("idle_trace_day_2239_nodes", |b| {
        b.iter(|| {
            black_box(
                IdleModel::prometheus_week()
                    .generate(SimDuration::from_hours(24), 43)
                    .n_intervals(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
