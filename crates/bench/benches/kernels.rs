//! Criterion measurement of the SeBS kernels (Fig. 7's raw numbers) and
//! the sequential-vs-rayon PageRank ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use sebs::{bfs, mst, pagerank, pagerank_par, Graph};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let g = Graph::barabasi_albert(20_000, 3, 7);
    let mut group = c.benchmark_group("sebs");
    group.sample_size(30);
    group.bench_function("bfs_20k", |b| b.iter(|| black_box(bfs(&g, 0).1)));
    group.bench_function("mst_20k", |b| b.iter(|| black_box(mst(&g).0)));
    group.bench_function("pagerank_20k_seq", |b| {
        b.iter(|| black_box(pagerank(&g, 1e-8, 100).1))
    });
    group.bench_function("pagerank_20k_rayon", |b| {
        b.iter(|| black_box(pagerank_par(&g, 1e-8, 100).1))
    });
    group.finish();
}

fn bench_graph_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group.sample_size(20);
    group.bench_function("barabasi_albert_20k", |b| {
        b.iter(|| black_box(Graph::barabasi_albert(20_000, 3, 7).n_edges()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_graph_gen);
criterion_main!(benches);
