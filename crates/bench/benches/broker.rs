//! Microbenchmarks of the Kafka-like broker: produce/fetch throughput
//! and the drain protocol's `move_all`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mq::Broker;
use simcore::SimTime;
use std::hint::black_box;

fn bench_produce_fetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("broker");
    g.bench_function("produce_fetch_10k", |b| {
        b.iter_batched(
            || {
                let mut br: Broker<u64> = Broker::new();
                let t = br.create_topic("t");
                (br, t)
            },
            |(mut br, t)| {
                for i in 0..10_000u64 {
                    br.produce(t, SimTime::ZERO, i);
                }
                let mut acc = 0u64;
                while !br.fetch(t, 64).is_empty() {
                    acc += 1;
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("move_all_10k", |b| {
        b.iter_batched(
            || {
                let mut br: Broker<u64> = Broker::new();
                let from = br.create_topic("from");
                let to = br.create_topic("to");
                for i in 0..10_000u64 {
                    br.produce(from, SimTime::ZERO, i);
                }
                (br, from, to)
            },
            |(mut br, from, to)| black_box(br.move_all(from, to, SimTime::ZERO)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_produce_fetch
}
criterion_main!(benches);
