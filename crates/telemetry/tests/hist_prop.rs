//! Property tests for the log-linear histogram: quantiles stay within
//! the documented ~2% relative bucket error of the exact sample
//! quantile, snapshot merging is commutative and associative, and a
//! registry scraped concurrently with recorders observes monotone,
//! conserved counts.

use proptest::prelude::*;
use std::sync::Arc;
use telemetry::{labels, one_series, Collected, HistSnapshot, Histogram, MetricKind, Registry};

/// Exact nearest-rank quantile, mirroring `HistSnapshot::quantile`'s
/// rank convention over the raw samples.
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((p.clamp(0.0, 1.0) * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn snap_of(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record_owned(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The histogram's nearest-rank quantile lands within 2% relative
    /// error of the exact sample quantile (values below 64 are exact).
    #[test]
    fn quantile_within_two_percent_of_exact(
        values in collection::vec(0u64..(1 << 40), 1..200),
        ps in collection::vec(0.0f64..1.0001, 1..6),
    ) {
        let snap = snap_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for p in ps {
            let exact = exact_quantile(&sorted, p);
            let approx = snap.quantile(p);
            prop_assert!(approx.is_finite());
            if exact == 0 {
                prop_assert_eq!(approx, 0.0, "zero is bucketed exactly");
            } else {
                let rel = (approx - exact as f64).abs() / exact as f64;
                prop_assert!(
                    rel <= 0.02,
                    "p={p}: exact {exact}, approx {approx}, rel err {rel}"
                );
            }
        }
    }

    /// Merging snapshots is commutative and associative on the bucket
    /// table and total count (the midpoint sum is float-order
    /// sensitive, so it gets a relative tolerance).
    #[test]
    fn merge_is_commutative_and_associative(
        a in collection::vec(0u64..(1 << 32), 0..100),
        b in collection::vec(0u64..(1 << 32), 0..100),
        c in collection::vec(0u64..(1 << 32), 0..100),
    ) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab.buckets, &ba.buckets);
        prop_assert_eq!(ab.count, ba.count);

        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c.buckets, &a_bc.buckets);
        prop_assert_eq!(ab_c.count, a_bc.count);
        let scale = ab_c.sum.abs().max(1.0);
        prop_assert!((ab_c.sum - a_bc.sum).abs() / scale < 1e-9);
    }

    /// `since` inverts `merge`: the diff of a later cumulative snapshot
    /// against an earlier one is exactly the in-between recordings.
    #[test]
    fn since_recovers_the_delta(
        early in collection::vec(0u64..(1 << 32), 0..100),
        late in collection::vec(0u64..(1 << 32), 0..100),
    ) {
        let h = Histogram::new();
        for &v in &early {
            h.record_owned(v);
        }
        let s0 = h.snapshot();
        for &v in &late {
            h.record_owned(v);
        }
        let s1 = h.snapshot();
        let delta = s1.since(&s0);
        let expect = snap_of(&late);
        prop_assert_eq!(&delta.buckets, &expect.buckets);
        prop_assert_eq!(delta.count, late.len() as u64);
    }
}

/// Concurrent recorders vs. a scraping registry: every snapshot taken
/// mid-flight sees a monotone epoch and a histogram count that never
/// exceeds what was recorded; at quiescence the books balance exactly
/// (no sample lost or double-counted across the atomic bucket adds).
#[test]
fn concurrent_recording_conserves_counts_across_snapshots() {
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 20_000;

    let hist = Arc::new(Histogram::new());
    let registry = Arc::new(Registry::new());
    let h = hist.clone();
    registry.register(
        "stress_latency_ns",
        "stress histogram",
        MetricKind::Histogram,
        Box::new(move || vec![(labels(&[]), Collected::Hist(h.snapshot()))]),
    );
    let h = hist.clone();
    registry.register(
        "stress_recorded_total",
        "stress recorded count",
        MetricKind::Counter,
        Box::new(move || one_series(Collected::Counter(h.count()))),
    );

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let hist = hist.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread across octaves so merging touches many buckets.
                    hist.record((i + 1) << (t * 7));
                }
            });
        }
        let mut last_count = 0u64;
        let mut last_epoch = 0u64;
        for _ in 0..50 {
            let snap = registry.snapshot();
            assert!(snap.epoch > last_epoch, "scrape epoch must advance");
            last_epoch = snap.epoch;
            let h = snap
                .histogram("stress_latency_ns", &[])
                .expect("registered");
            let bucket_total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
            assert_eq!(h.count, bucket_total, "count is the bucket sum");
            assert!(h.count <= THREADS as u64 * PER_THREAD);
            assert!(h.count >= last_count, "snapshots are monotone");
            last_count = h.count;
        }
    });

    let fin = registry.snapshot();
    let h = fin.histogram("stress_latency_ns", &[]).expect("registered");
    assert_eq!(h.count, THREADS as u64 * PER_THREAD, "conservation");
    assert_eq!(
        fin.counter("stress_recorded_total", &[]),
        Some(THREADS as u64 * PER_THREAD)
    );
}
