//! Metric families, epoch-stamped snapshots with
//! delta-since-last-scrape, and the Prometheus text exposition.
//!
//! The registry is deliberately *cold*: hot paths hold `Arc`s to their
//! own atomics (counters, histogram shards) and never touch the
//! registry. Families are registered once as [`Collect`] closures that
//! read those atomics at scrape time — merging per-invoker shards,
//! labelling per-action rows — so a scrape is the only place string
//! labels or allocation appear.

use crate::hist::HistSnapshot;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Label set for one series: `(key, value)` pairs.
pub type Labels = Vec<(String, String)>;

/// What kind of family this is (drives exposition `# TYPE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

/// One collected series value.
#[derive(Debug, Clone)]
pub enum Collected {
    Counter(u64),
    Gauge(i64),
    Hist(HistSnapshot),
}

/// A scrape-time reader for one family: returns every live series.
pub trait Collect: Send + Sync {
    fn collect(&self) -> Vec<(Labels, Collected)>;
}

impl<F> Collect for F
where
    F: Fn() -> Vec<(Labels, Collected)> + Send + Sync,
{
    fn collect(&self) -> Vec<(Labels, Collected)> {
        self()
    }
}

/// Convenience constructor for an unlabelled series list.
pub fn one_series(v: Collected) -> Vec<(Labels, Collected)> {
    vec![(Vec::new(), v)]
}

/// Build a label set from `&[(&str, &str)]`.
pub fn labels(kv: &[(&str, &str)]) -> Labels {
    kv.iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

struct FamilyReg {
    name: String,
    help: String,
    kind: MetricKind,
    collector: Box<dyn Collect>,
    /// Previous scrape's value per series (keyed by rendered labels),
    /// for delta-since-last-scrape.
    last: HashMap<String, f64>,
}

/// A set of named metric families. Scrapes are serialized internally;
/// registration is cold-path only.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<FamilyReg>>,
    epoch: AtomicU64,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a family. Family names must be unique; re-registering a
    /// name replaces the collector (useful in tests).
    pub fn register(&self, name: &str, help: &str, kind: MetricKind, collector: Box<dyn Collect>) {
        let mut fams = self.families.lock().unwrap();
        if let Some(f) = fams.iter_mut().find(|f| f.name == name) {
            f.collector = collector;
            f.help = help.to_string();
            f.kind = kind;
            f.last.clear();
        } else {
            fams.push(FamilyReg {
                name: name.to_string(),
                help: help.to_string(),
                kind,
                collector,
                last: HashMap::new(),
            });
        }
    }

    /// Epoch-stamped, delta-carrying snapshot of every family.
    ///
    /// The epoch is a monotone scrape counter; each series carries
    /// `delta` = value change since the *previous* scrape of this
    /// registry (counters and histogram counts are monotone, so the
    /// delta is the traffic between the two scrapes).
    pub fn snapshot(&self) -> Snapshot {
        let epoch = self.epoch.fetch_add(1, Relaxed) + 1;
        let mut fams = self.families.lock().unwrap();
        let mut out = Vec::with_capacity(fams.len());
        for f in fams.iter_mut() {
            let mut series = Vec::new();
            for (lbls, value) in f.collector.collect() {
                let key = label_key(&lbls);
                let now = match &value {
                    Collected::Counter(v) => *v as f64,
                    Collected::Gauge(v) => *v as f64,
                    Collected::Hist(h) => h.count as f64,
                };
                let prev = f.last.insert(key, now).unwrap_or(0.0);
                series.push(SeriesSnapshot {
                    labels: lbls,
                    value,
                    delta: now - prev,
                });
            }
            out.push(FamilySnapshot {
                name: f.name.clone(),
                help: f.help.clone(),
                kind: f.kind,
                series,
            });
        }
        Snapshot {
            epoch,
            families: out,
        }
    }
}

fn label_key(lbls: &Labels) -> String {
    let mut s = String::new();
    for (k, v) in lbls {
        s.push_str(k);
        s.push('=');
        s.push_str(v);
        s.push(',');
    }
    s
}

/// One series at scrape time.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    pub labels: Labels,
    pub value: Collected,
    /// Change since the previous scrape (counter/gauge value, or
    /// histogram sample count).
    pub delta: f64,
}

/// One family at scrape time.
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    pub series: Vec<SeriesSnapshot>,
}

/// A consistent scrape: every family read under one registry lock,
/// stamped with a monotone epoch.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub epoch: u64,
    pub families: Vec<FamilySnapshot>,
}

impl Snapshot {
    fn find(&self, family: &str, lbls: &[(&str, &str)]) -> Option<&SeriesSnapshot> {
        let fam = self.families.iter().find(|f| f.name == family)?;
        fam.series.iter().find(|s| {
            lbls.len() == s.labels.len()
                && lbls
                    .iter()
                    .all(|&(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
    }

    /// Counter value for an exact label match.
    pub fn counter(&self, family: &str, lbls: &[(&str, &str)]) -> Option<u64> {
        match self.find(family, lbls)?.value {
            Collected::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Counter delta-since-last-scrape for an exact label match.
    pub fn counter_delta(&self, family: &str, lbls: &[(&str, &str)]) -> Option<u64> {
        match self.find(family, lbls)?.value {
            Collected::Counter(_) => Some(self.find(family, lbls)?.delta.max(0.0) as u64),
            _ => None,
        }
    }

    /// Gauge value for an exact label match.
    pub fn gauge(&self, family: &str, lbls: &[(&str, &str)]) -> Option<i64> {
        match self.find(family, lbls)?.value {
            Collected::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Histogram state for an exact label match.
    pub fn histogram(&self, family: &str, lbls: &[(&str, &str)]) -> Option<&HistSnapshot> {
        match &self.find(family, lbls)?.value {
            Collected::Hist(h) => Some(h),
            _ => None,
        }
    }

    /// Sum of counter series in a family whose labels include `filter`.
    pub fn counter_sum(&self, family: &str, filter: &[(&str, &str)]) -> u64 {
        let Some(fam) = self.families.iter().find(|f| f.name == family) else {
            return 0;
        };
        fam.series
            .iter()
            .filter(|s| {
                filter
                    .iter()
                    .all(|&(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
            })
            .map(|s| match s.value {
                Collected::Counter(v) => v,
                _ => 0,
            })
            .sum()
    }
}

/// Render a snapshot in the Prometheus text exposition format.
///
/// Histograms emit cumulative `_bucket{le=...}` lines for non-empty
/// buckets plus `le="+Inf"`, `_sum` (midpoint-approximated) and
/// `_count`. A trailing `telemetry_scrape_epoch` gauge carries the
/// snapshot epoch so scrapers can detect missed scrapes.
pub fn render_prometheus(snap: &Snapshot) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for fam in &snap.families {
        let kind = match fam.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
        let _ = writeln!(out, "# TYPE {} {}", fam.name, kind);
        for s in &fam.series {
            match &s.value {
                Collected::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", fam.name, render_labels(&s.labels, &[]), v);
                }
                Collected::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", fam.name, render_labels(&s.labels, &[]), v);
                }
                Collected::Hist(h) => {
                    let mut cum = 0u64;
                    for &(i, c) in &h.buckets {
                        cum += c;
                        let le = crate::hist::bucket_upper(i as usize).to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            fam.name,
                            render_labels(&s.labels, &[("le", &le)]),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        fam.name,
                        render_labels(&s.labels, &[("le", "+Inf")]),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        fam.name,
                        render_labels(&s.labels, &[]),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        fam.name,
                        render_labels(&s.labels, &[]),
                        h.count
                    );
                }
            }
        }
    }
    let _ = writeln!(out, "# HELP telemetry_scrape_epoch Monotone scrape counter");
    let _ = writeln!(out, "# TYPE telemetry_scrape_epoch gauge");
    let _ = writeln!(out, "telemetry_scrape_epoch {}", snap.epoch);
    out
}

fn render_labels(lbls: &Labels, extra: &[(&str, &str)]) -> String {
    if lbls.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in lbls
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(k);
        s.push_str("=\"");
        s.push_str(v);
        s.push('"');
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, Histogram};
    use std::sync::Arc;

    #[test]
    fn snapshot_carries_deltas_across_epochs() {
        let reg = Registry::new();
        let c = Arc::new(Counter::new());
        let cc = c.clone();
        reg.register(
            "test_total",
            "a test counter",
            MetricKind::Counter,
            Box::new(move || one_series(Collected::Counter(cc.get()))),
        );
        c.add(5);
        let s1 = reg.snapshot();
        assert_eq!(s1.counter("test_total", &[]), Some(5));
        assert_eq!(s1.counter_delta("test_total", &[]), Some(5));
        c.add(3);
        let s2 = reg.snapshot();
        assert_eq!(s2.epoch, s1.epoch + 1);
        assert_eq!(s2.counter("test_total", &[]), Some(8));
        assert_eq!(s2.counter_delta("test_total", &[]), Some(3));
    }

    #[test]
    fn prometheus_rendering_has_families_and_epoch() {
        let reg = Registry::new();
        let h = Arc::new(Histogram::new());
        h.record(1000);
        h.record(2000);
        let hh = h.clone();
        reg.register(
            "lat_ns",
            "latency",
            MetricKind::Histogram,
            Box::new(move || vec![(labels(&[("kind", "total")]), Collected::Hist(hh.snapshot()))]),
        );
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{kind=\"total\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ns_count{kind=\"total\"} 2"));
        assert!(text.contains("telemetry_scrape_epoch 1"));
    }
}
