//! # hpcwhisk-telemetry
//!
//! The always-on metrics plane for the HPC-Whisk reproduction: the
//! sensory substrate the paper's §V/§VII evaluation assumes (HPC-Whisk
//! instrumented OpenWhisk + Prometheus node metrics) and that every
//! closed-loop capacity decision must read from.
//!
//! Four pieces, all built for hot paths measured in nanoseconds:
//!
//! * [`Counter`] / [`Gauge`] / [`CounterVec`] — relaxed atomics; a
//!   recorded event costs one relaxed increment plus one array index.
//!   Single-writer shards (one per invoker thread) can use the
//!   `*_owned` variants, which compile to a plain load+store on the
//!   writer's own cache line.
//! * [`Histogram`] — fixed-footprint log-linear latency histogram
//!   (64 linear sub-buckets per power of two): mergeable, ~1.6% worst
//!   case relative bucket error, quantiles without storing samples.
//!   Replaces the unbounded `Vec`-backed `Cdf` on serving hot paths.
//! * [`Registry`] — named metric families behind `dyn Collect`
//!   closures so the hot path never touches the registry;
//!   [`Registry::snapshot`] is epoch-stamped and carries
//!   delta-since-last-scrape for every series;
//!   [`render_prometheus`] emits the text exposition format.
//! * [`flight`] — a lock-free per-thread flight-recorder ring of typed
//!   events (sheds, lease grants/revokes, drains, cold/warm/evict,
//!   queue high-water) dumped on exactly-once violations, conservation
//!   failures, or test panics.

pub mod counter;
pub mod flight;
pub mod hist;
pub mod registry;

pub use counter::{Counter, CounterVec, Gauge};
pub use flight::{EventKind, FlightEvent};
pub use hist::{HistSnapshot, Histogram};
pub use registry::{
    labels, one_series, render_prometheus, Collect, Collected, FamilySnapshot, Labels, MetricKind,
    Registry, SeriesSnapshot, Snapshot,
};
