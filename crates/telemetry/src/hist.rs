//! Fixed-footprint log-linear histogram.
//!
//! HDR-style bucketing: values below 64 land in width-1 buckets (exact);
//! above that, each power-of-two octave is split into 64 linear
//! sub-buckets, so a bucket's width is at most 1/64 of its lower bound.
//! Reporting the bucket midpoint bounds the relative quantile error by
//! half a bucket width — ≤ 0.79% — comfortably inside the ~2% budget,
//! with zero per-sample storage. The whole histogram is a flat array of
//! 3,776 atomic counters (~30 KiB), mergeable by bucket-wise addition.
//!
//! Recording costs one index computation (a handful of ALU ops on the
//! leading-zero count) plus one relaxed atomic increment. Single-writer
//! shards can use [`Histogram::record_owned`], a plain load+store on a
//! cache line only the owning thread dirties.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// log2 of the linear sub-bucket count per octave.
const SUB_BITS: u32 = 6;
/// Linear sub-buckets per octave (64 → ≤1.6% bucket width).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const N_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Bucket index for a value. Monotone in `v`.
#[inline(always)]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let exp = msb - SUB_BITS;
        (((exp + 1) << SUB_BITS) + ((v >> exp) as u32 & (SUB as u32 - 1))) as usize
    }
}

/// Inclusive lower bound of bucket `idx`.
#[inline]
pub fn bucket_lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let exp = (idx >> SUB_BITS) - 1;
        (SUB + (idx & (SUB - 1))) << exp
    }
}

/// Exclusive upper bound of bucket `idx` (saturating at `u64::MAX`).
#[inline]
pub fn bucket_upper(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx + 1
    } else {
        let exp = (idx >> SUB_BITS) - 1;
        ((SUB + (idx & (SUB - 1)) + 1) << exp).max(bucket_lower(idx as usize))
    }
}

/// Representative value reported for bucket `idx` (the midpoint).
#[inline]
fn bucket_mid(idx: usize) -> f64 {
    if (idx as u64) < SUB {
        idx as f64
    } else {
        (bucket_lower(idx) as f64 + bucket_upper(idx) as f64) / 2.0
    }
}

/// A concurrent log-linear histogram of `u64` samples (typically
/// nanoseconds). Fixed footprint, mergeable, quantiles without samples.
pub struct Histogram {
    buckets: Box<[AtomicU64; N_BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (~30 KiB, allocated zeroed).
    pub fn new() -> Self {
        // Zeroed Box<[AtomicU64; N]> without a 30 KiB stack temporary.
        let v: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let boxed: Box<[AtomicU64]> = v.into_boxed_slice();
        let buckets = boxed.try_into().unwrap_or_else(|_| unreachable!());
        Self { buckets }
    }

    /// Record one sample: one index computation + one relaxed
    /// `fetch_add`. Safe from any number of threads.
    #[inline(always)]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
    }

    /// Record one sample from the histogram's *single writer*: a plain
    /// load+store (no locked RMW). Callers must guarantee only one
    /// thread ever calls the `_owned` methods on this histogram;
    /// concurrent readers just see slightly stale counts.
    #[inline(always)]
    pub fn record_owned(&self, v: u64) {
        let b = &self.buckets[bucket_index(v)];
        b.store(b.load(Relaxed) + 1, Relaxed);
    }

    /// Total recorded samples (sum of buckets; relaxed).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// Fold another histogram into this one (bucket-wise add).
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Relaxed);
            if v != 0 {
                dst.fetch_add(v, Relaxed);
            }
        }
    }

    /// Nearest-rank quantile (same convention as `metrics::Cdf`):
    /// the ceil(p·n)-th smallest sample's bucket midpoint. `NaN` when
    /// empty. `p` is clamped to `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.snapshot().quantile(p)
    }

    /// A point-in-time copy (sparse) for snapshots, deltas and merges.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut sparse = Vec::new();
        let mut count = 0u64;
        let mut sum = 0.0f64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Relaxed);
            if c != 0 {
                sparse.push((i as u32, c));
                count += c;
                sum += c as f64 * bucket_mid(i);
            }
        }
        HistSnapshot {
            buckets: sparse,
            count,
            sum,
        }
    }

    /// Rebuild a histogram from a snapshot (used by the harness to hand
    /// callers a quantile-capable delta).
    pub fn from_snapshot(s: &HistSnapshot) -> Self {
        let h = Self::new();
        for &(i, c) in &s.buckets {
            h.buckets[i as usize].store(c, Relaxed);
        }
        h
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.quantile(0.5))
            .field("p99", &s.quantile(0.99))
            .finish()
    }
}

/// Sparse point-in-time histogram state: `(bucket, count)` pairs plus
/// the total count and a midpoint-approximated sum.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistSnapshot {
    /// Non-empty `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Total samples.
    pub count: u64,
    /// Midpoint-approximated sum of samples (bucket error applies).
    pub sum: f64,
}

impl HistSnapshot {
    /// Nearest-rank quantile over the snapshot. `NaN` when empty.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return bucket_mid(i as usize);
            }
        }
        bucket_mid(self.buckets.last().map(|&(i, _)| i as usize).unwrap_or(0))
    }

    /// Bucket-wise merge of another snapshot into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        let mut out = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.buckets.len() || b < other.buckets.len() {
            match (self.buckets.get(a), other.buckets.get(b)) {
                (Some(&(ia, ca)), Some(&(ib, cb))) if ia == ib => {
                    out.push((ia, ca + cb));
                    a += 1;
                    b += 1;
                }
                (Some(&(ia, ca)), Some(&(ib, _))) if ia < ib => {
                    out.push((ia, ca));
                    a += 1;
                }
                (Some(_), Some(&(ib, cb))) => {
                    out.push((ib, cb));
                    b += 1;
                }
                (Some(&(ia, ca)), None) => {
                    out.push((ia, ca));
                    a += 1;
                }
                (None, Some(&(ib, cb))) => {
                    out.push((ib, cb));
                    b += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = out;
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Bucket-wise difference `self − earlier` (both cumulative states
    /// of the same histogram; counts are monotone so the result is
    /// non-negative).
    pub fn since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut prev = std::collections::HashMap::new();
        for &(i, c) in &earlier.buckets {
            prev.insert(i, c);
        }
        let mut out = HistSnapshot::default();
        for &(i, c) in &self.buckets {
            let d = c.saturating_sub(prev.get(&i).copied().unwrap_or(0));
            if d != 0 {
                out.buckets.push((i, d));
                out.count += d;
                out.sum += d as f64 * bucket_mid(i as usize);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let probes = [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            4096,
            1 << 20,
            (1 << 20) + 17,
            u64::MAX / 2,
            u64::MAX,
        ];
        let mut prev_idx = 0usize;
        let mut prev_v = 0u64;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < N_BUCKETS, "index {i} out of range for {v}");
            assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
            if i < N_BUCKETS - 1 {
                assert!(v < bucket_upper(i), "upper({i}) <= {v}");
            }
            if v > prev_v {
                assert!(i >= prev_idx, "index not monotone at {v}");
            }
            prev_idx = i;
            prev_v = v;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        for v in 0..64u64 {
            let q = (v + 1) as f64 / 64.0;
            assert_eq!(h.quantile(q), v as f64);
        }
    }

    #[test]
    fn empty_quantile_is_nan() {
        assert!(Histogram::new().quantile(0.5).is_nan());
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(100);
        b.record(100);
        b.record(1_000_000);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn snapshot_roundtrip_and_since() {
        let h = Histogram::new();
        for v in [5u64, 500, 50_000] {
            h.record(v);
        }
        let s0 = h.snapshot();
        for v in [500u64, 7_000_000] {
            h.record(v);
        }
        let s1 = h.snapshot();
        let d = s1.since(&s0);
        assert_eq!(d.count, 2);
        let rebuilt = Histogram::from_snapshot(&d);
        assert_eq!(rebuilt.count(), 2);
    }
}
