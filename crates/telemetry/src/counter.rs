//! Relaxed atomic counters and gauges, plus fixed-width sharded
//! counter arrays. The contract on every hot-path method: one relaxed
//! atomic operation, at most one array index.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

/// A monotone counter. `inc`/`add` are safe from any thread; the
/// `_owned` variants are plain load+store for single-writer shards.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline(always)]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    #[inline(always)]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// Single-writer increment: plain load+store, no locked RMW.
    #[inline(always)]
    pub fn inc_owned(&self) {
        self.0.store(self.0.load(Relaxed) + 1, Relaxed);
    }

    /// Single-writer add: plain load+store, no locked RMW.
    #[inline(always)]
    pub fn add_owned(&self, n: u64) {
        if n != 0 {
            self.0.store(self.0.load(Relaxed) + n, Relaxed);
        }
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A signed gauge with set/add/sub and a running maximum helper.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline(always)]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    #[inline(always)]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Relaxed);
    }

    #[inline(always)]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (high-water tracking).
    #[inline(always)]
    pub fn raise(&self, v: i64) {
        self.0.fetch_max(v, Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// A fixed-width array of counters indexed by a small dense id
/// (action index, invoker slot, shed reason). One relaxed increment +
/// one array index per event; out-of-range ids are dropped rather than
/// panicking (instrumentation must never take down the serving plane).
#[derive(Debug)]
pub struct CounterVec {
    counts: Box<[AtomicU64]>,
}

impl CounterVec {
    pub fn new(len: usize) -> Self {
        Self {
            counts: (0..len).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    #[inline(always)]
    pub fn inc(&self, i: usize) {
        if let Some(c) = self.counts.get(i) {
            c.fetch_add(1, Relaxed);
        }
    }

    #[inline(always)]
    pub fn add(&self, i: usize, n: u64) {
        if n != 0 {
            if let Some(c) = self.counts.get(i) {
                c.fetch_add(n, Relaxed);
            }
        }
    }

    /// Single-writer add: plain load+store on the shard's own line.
    #[inline(always)]
    pub fn add_owned(&self, i: usize, n: u64) {
        if n != 0 {
            if let Some(c) = self.counts.get(i) {
                c.store(c.load(Relaxed) + n, Relaxed);
            }
        }
    }

    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.counts.get(i).map(|c| c.load(Relaxed)).unwrap_or(0)
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_paths_agree() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.inc_owned();
        c.add_owned(5);
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn gauge_raise_tracks_max() {
        let g = Gauge::new();
        g.raise(5);
        g.raise(3);
        assert_eq!(g.get(), 5);
        g.add(2);
        g.sub(1);
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn counter_vec_bounds_are_soft() {
        let v = CounterVec::new(2);
        v.inc(0);
        v.add(1, 3);
        v.inc(99); // dropped, not a panic
        assert_eq!(v.get(0), 1);
        assert_eq!(v.get(1), 3);
        assert_eq!(v.total(), 4);
    }
}
