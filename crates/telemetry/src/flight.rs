//! Lock-free per-thread flight recorder.
//!
//! Every participating thread owns a fixed ring of typed events
//! (sheds, lease grants/revokes, drain start/finish, cold/warm/evict,
//! queue-depth high-water). Recording is wait-free: a thread-local ring
//! lookup, three relaxed stores, one release store of the head — no
//! locks, no allocation, no cross-thread contention. The recorder is
//! **off by default** (a single relaxed load + branch per call site);
//! stress tests and churn binaries switch it on.
//!
//! On an exactly-once violation, a conservation failure, or a test
//! panic (via [`install_panic_hook`]), [`dump`] merges every thread's
//! ring into one time-sorted table of the last events before the
//! failure — the black box you read *after* the crash.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events per thread ring (power of two).
pub const RING: usize = 256;

/// Typed flight-recorder events. `a`/`b` are event-specific payloads
/// (ids, depths, counts) documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Admission shed; `a` = action index, `b` = shed reason code.
    AdmissionShed = 1,
    /// Capacity lease granted; `a` = node id.
    LeaseGrant = 2,
    /// Capacity lease revoked; `a` = node id, `b` = 1 if surprise.
    LeaseRevoke = 3,
    /// Invoker drain started; `a` = node id, `b` = 1 if deadline-led.
    DrainStart = 4,
    /// Invoker drain finished; `a` = node id, `b` = requests flushed.
    DrainFinish = 5,
    /// Cold container start; `a` = action index, `b` = invoker slot.
    ColdStart = 6,
    /// Warm container hit; `a` = action index, `b` = invoker slot.
    WarmHit = 7,
    /// Container evicted; `a` = action index, `b` = 0 LRU / 1 keepalive / 2 drain-retire.
    Evict = 8,
    /// Work-queue depth high-water mark; `a` = invoker slot, `b` = depth.
    QueueHighWater = 9,
    /// Free-form marker for tests; `a`/`b` caller-defined.
    Marker = 10,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(Self::AdmissionShed),
            2 => Some(Self::LeaseGrant),
            3 => Some(Self::LeaseRevoke),
            4 => Some(Self::DrainStart),
            5 => Some(Self::DrainFinish),
            6 => Some(Self::ColdStart),
            7 => Some(Self::WarmHit),
            8 => Some(Self::Evict),
            9 => Some(Self::QueueHighWater),
            10 => Some(Self::Marker),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            Self::AdmissionShed => "admission_shed",
            Self::LeaseGrant => "lease_grant",
            Self::LeaseRevoke => "lease_revoke",
            Self::DrainStart => "drain_start",
            Self::DrainFinish => "drain_finish",
            Self::ColdStart => "cold_start",
            Self::WarmHit => "warm_hit",
            Self::Evict => "evict",
            Self::QueueHighWater => "queue_highwater",
            Self::Marker => "marker",
        }
    }
}

/// One decoded event, as returned by [`events`].
#[derive(Debug, Clone, Copy)]
pub struct FlightEvent {
    /// Nanoseconds since the recorder's process-wide epoch.
    pub at_ns: u64,
    pub kind: EventKind,
    pub a: u64,
    pub b: u64,
    /// Arbitrary id of the recording thread.
    pub thread: u64,
}

struct Slot {
    // kind in the top byte, timestamp (ns, truncated to 56 bits) below.
    word: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

struct Ring {
    slots: Box<[Slot]>,
    head: AtomicU64,
    thread: u64,
}

impl Ring {
    fn new(thread: u64) -> Self {
        Self {
            slots: (0..RING)
                .map(|_| Slot {
                    word: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            thread,
        }
    }
}

struct Recorder {
    enabled: AtomicBool,
    epoch: Instant,
    rings: Mutex<Vec<Arc<Ring>>>,
    next_thread: AtomicU64,
    last_dump: Mutex<Option<String>>,
}

fn recorder() -> &'static Recorder {
    static REC: OnceLock<Recorder> = OnceLock::new();
    REC.get_or_init(|| Recorder {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        rings: Mutex::new(Vec::new()),
        next_thread: AtomicU64::new(0),
        last_dump: Mutex::new(None),
    })
}

thread_local! {
    static TLS_RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

/// Switch the recorder on (idempotent). Off by default; when off,
/// [`record`] is a single relaxed load + branch.
pub fn enable() {
    recorder().enabled.store(true, Ordering::Relaxed);
}

/// Switch the recorder off. Rings are kept (a later enable resumes).
pub fn disable() {
    recorder().enabled.store(false, Ordering::Relaxed);
}

/// Whether the recorder is currently on.
#[inline(always)]
pub fn enabled() -> bool {
    recorder().enabled.load(Ordering::Relaxed)
}

/// Record one event into this thread's ring. Wait-free when enabled;
/// one load + branch when disabled.
#[inline]
pub fn record(kind: EventKind, a: u64, b: u64) {
    let rec = recorder();
    if !rec.enabled.load(Ordering::Relaxed) {
        return;
    }
    let at = rec.epoch.elapsed().as_nanos() as u64 & ((1 << 56) - 1);
    let word = ((kind as u64) << 56) | at;
    TLS_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let id = rec.next_thread.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(Ring::new(id));
            rec.rings.lock().unwrap().push(ring.clone());
            ring
        });
        let head = ring.head.load(Ordering::Relaxed);
        let slot = &ring.slots[(head as usize) & (RING - 1)];
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.word.store(word, Ordering::Relaxed);
        ring.head.store(head + 1, Ordering::Release);
    });
}

/// Decode every ring's retained events, merged and time-sorted.
pub fn events() -> Vec<FlightEvent> {
    let rec = recorder();
    let rings: Vec<Arc<Ring>> = rec.rings.lock().unwrap().clone();
    let mut out = Vec::new();
    for ring in rings {
        let head = ring.head.load(Ordering::Acquire);
        let n = head.min(RING as u64);
        for i in (head - n)..head {
            let slot = &ring.slots[(i as usize) & (RING - 1)];
            let word = slot.word.load(Ordering::Relaxed);
            let Some(kind) = EventKind::from_u8((word >> 56) as u8) else {
                continue;
            };
            out.push(FlightEvent {
                at_ns: word & ((1 << 56) - 1),
                kind,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
                thread: ring.thread,
            });
        }
    }
    out.sort_by_key(|e| e.at_ns);
    out
}

/// Render the merged rings as a human-readable dump.
pub fn dump() -> String {
    use std::fmt::Write;
    let evs = events();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "=== flight recorder: last {} events ({} threads) ===",
        evs.len(),
        recorder().rings.lock().unwrap().len()
    );
    for e in &evs {
        let _ = writeln!(
            s,
            "  [{:>12} ns] t{:<2} {:<16} a={} b={}",
            e.at_ns,
            e.thread,
            e.kind.as_str(),
            e.a,
            e.b
        );
    }
    let _ = writeln!(s, "=== end flight recorder dump ===");
    s
}

/// Record a violation: renders the dump, stores it for
/// [`last_dump`], writes it to stderr, and returns it.
pub fn note_violation(context: &str) -> String {
    let mut text = format!("flight recorder violation: {context}\n");
    text.push_str(&dump());
    *recorder().last_dump.lock().unwrap() = Some(text.clone());
    eprintln!("{text}");
    text
}

/// The most recent violation dump, if any (used by tests to assert the
/// ring actually surfaced).
pub fn last_dump() -> Option<String> {
    recorder().last_dump.lock().unwrap().clone()
}

/// Assert an exactly-once / conservation invariant. On failure the
/// flight recorder dumps the last events before panicking, so the
/// panic message is preceded by the black box.
#[track_caller]
pub fn guard(condition: bool, context: &str) {
    if !condition {
        note_violation(context);
        panic!("invariant violated: {context} (flight recorder dumped above)");
    }
}

/// Chain a panic hook that dumps the flight recorder before the
/// default handler runs (idempotent).
pub fn install_panic_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if enabled() {
            eprintln!("{}", dump());
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the recorder is process-global state and
    // parallel test threads toggling enable/disable would race.
    #[test]
    fn recorder_gates_records_and_bounds_retention() {
        disable();
        record(EventKind::Marker, 1, 2);
        assert!(!events().iter().any(|e| e.kind == EventKind::Marker));
        enable();
        for i in 0..(RING as u64 + 50) {
            record(EventKind::QueueHighWater, i, 0);
        }
        record(EventKind::Marker, 7, 8);
        let evs = events();
        assert!(evs.iter().any(|e| e.kind == EventKind::Marker && e.a == 7));
        let hw: Vec<_> = evs
            .iter()
            .filter(|e| e.kind == EventKind::QueueHighWater)
            .collect();
        assert!(hw.len() <= RING, "ring should bound retention");
        assert!(hw.iter().any(|e| e.a == RING as u64 + 49));
        let text = dump();
        assert!(text.contains("queue_highwater"));
        disable();
    }
}
