//! # hpc-whisk
//!
//! Facade crate for the HPC-Whisk reproduction (SC 2022: *Using Unused:
//! Non-Invasive Dynamic FaaS Infrastructure with HPC-Whisk*).
//!
//! Re-exports every workspace crate under a stable path so examples,
//! integration tests and downstream users need a single dependency:
//!
//! * [`simcore`] — deterministic discrete-event engine;
//! * [`metrics`] — CDFs, time-weighted series, table rendering;
//! * [`mq`] — Kafka-like ordered-log broker substrate;
//! * [`cluster`] — Slurm-like workload manager (backfill, preemption);
//! * [`whisk`] — OpenWhisk-like FaaS platform with the HPC-Whisk
//!   dynamic-invoker extensions (the DES plane);
//! * [`gateway`] — the live serving plane: sharded routing, warm
//!   container pools and the drain protocol on real OS threads, with a
//!   closed-loop load harness;
//! * [`workload`] — trace generators calibrated to the paper's
//!   Prometheus statistics;
//! * [`sebs`] — SeBS-style compute kernels (BFS, MST, PageRank);
//! * [`core`] — the paper's contribution: pilot-job managers, the
//!   drain/handoff protocol glue, the clairvoyant offline simulator and
//!   the end-to-end experiment harness.

pub use cluster;
pub use gateway;
pub use hpcwhisk_core as core;
pub use metrics;
pub use mq;
pub use sebs;
pub use simcore;
pub use whisk;
pub use workload;
