//! Integration: the HPC-Whisk dynamic-worker extensions vs stock
//! OpenWhisk, end to end — the system-level counterpart of the
//! `whisk` crate's protocol tests.

use hpc_whisk::core::{run_day, DayConfig};
use hpc_whisk::simcore::SimDuration;
use hpc_whisk::whisk::DynamicsMode;
use hpc_whisk::workload::{ConstantRateLoadGen, IdleModel};

#[test]
fn baseline_openwhisk_loses_requests_hpcwhisk_does_not() {
    let mut m = IdleModel::var_day();
    m.n_nodes = 150;
    m.target_avg_idle = 4.0;
    m.forced_outage = None;
    let trace = m.generate(SimDuration::from_hours(3), 23);

    let mut on = DayConfig::fib_paper(5);
    on.load = Some(ConstantRateLoadGen {
        qps: 3.0,
        n_functions: 30,
    });
    let mut off = on.clone();
    off.whisk.mode = DynamicsMode::Baseline;

    let rep_on = run_day(&trace, on);
    let rep_off = run_day(&trace, off);

    let lost_on = rep_on.whisk_counters.timeout;
    let lost_off = rep_off.whisk_counters.timeout;
    assert!(
        lost_off > lost_on.saturating_mul(3),
        "baseline must lose far more: baseline {lost_off} vs hpc-whisk {lost_on}"
    );
    // The protocol's bookkeeping was actually exercised.
    assert!(rep_on.whisk_counters.moved_to_fastlane + rep_on.whisk_counters.refired > 0);
    assert!(rep_on.whisk_counters.drains_clean > 0);
    // Stock OpenWhisk never de-registers cleanly.
    assert_eq!(rep_off.whisk_counters.drains_clean, 0);
    assert!(rep_off.whisk_counters.hard_deaths > 0);
}

#[test]
fn success_rates_match_papers_band_with_protocol_on() {
    let mut m = IdleModel::fib_day();
    m.n_nodes = 150;
    m.target_avg_idle = 5.0;
    let trace = m.generate(SimDuration::from_hours(3), 31);
    let mut cfg = DayConfig::fib_paper(6);
    cfg.load = Some(ConstantRateLoadGen {
        qps: 3.0,
        n_functions: 30,
    });
    let report = run_day(&trace, cfg);
    let (succ, fail, timeout) = report.accepted_outcome_shares();
    // Paper §V-C: 95%+ of accepted invocations end with success.
    assert!(succ >= 0.93, "success {succ:.3}");
    assert!(fail <= 0.05, "failed {fail:.3}");
    assert!(timeout <= 0.05, "timeout {timeout:.3}");
}
