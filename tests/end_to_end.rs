//! Cross-crate integration: the full HPC-Whisk stack (workload → cluster
//! → whisk → coverage accounting) through the public facade, asserting
//! the paper's qualitative findings on scaled-down days.

use hpc_whisk::cluster::AvailabilityTrace;
use hpc_whisk::core::{lengths, run_day, DayConfig, ManagerKind};
use hpc_whisk::simcore::{SimDuration, SimTime};
use hpc_whisk::workload::{ConstantRateLoadGen, IdleModel};

fn small_day() -> AvailabilityTrace {
    let mut m = IdleModel::prometheus_week();
    m.n_nodes = 120;
    m.target_avg_idle = 4.0;
    m.generate(SimDuration::from_hours(4), 17)
}

#[test]
fn fib_converts_most_of_the_idle_surface() {
    let trace = small_day();
    let mut cfg = DayConfig::fib_paper(1);
    cfg.load = None;
    let mut rep = run_day(&trace, cfg);
    let slurm = rep.slurm_level();
    // A1 of the paper: fib turns ~90% of the surface into pilots.
    assert!(
        slurm.used_share > 0.75,
        "fib coverage too low: {:.3}",
        slurm.used_share
    );
    // The clairvoyant bound is in the same band and not wildly exceeded.
    let sim = rep.simulation(lengths::A1.to_vec());
    assert!(sim.coverage() > 0.7);
    assert!(slurm.used_share <= sim.coverage() + 0.1);
    // Healthy workers cover most of the pilot surface (paper: >95%).
    let ow = rep.ow_level();
    assert!(
        ow.healthy.3 > 0.80 * slurm.pilot_avg,
        "healthy {:.2} vs pilots {:.2}",
        ow.healthy.3,
        slurm.pilot_avg
    );
}

#[test]
fn var_covers_less_than_fib_on_the_same_day() {
    let trace = small_day();
    let mut fib_cfg = DayConfig::fib_paper(2);
    fib_cfg.load = None;
    let mut var_cfg = DayConfig::var_paper(2);
    var_cfg.load = None;
    let fib = run_day(&trace, fib_cfg);
    let var = run_day(&trace, var_cfg);
    let f = fib.slurm_level().used_share;
    let v = var.slurm_level().used_share;
    assert!(
        v < f,
        "paper's headline ordering must hold: var {v:.3} vs fib {f:.3}"
    );
}

#[test]
fn pilots_never_significantly_delay_prime_demand() {
    let trace = small_day();
    let mut cfg = DayConfig::fib_paper(3);
    cfg.load = None;
    let rep = run_day(&trace, cfg);
    let d = &rep.cluster_counters.demand_delay_secs;
    assert!(d.count() > 50, "claims ran: {}", d.count());
    // §III-D: at most the grace period (3 min), plus scheduling latency.
    assert!(
        d.max().unwrap() <= 180.0 + 15.0,
        "a prime job was delayed {:.1}s",
        d.max().unwrap()
    );
    // Typically the drain finishes in seconds.
    assert!(d.mean() < 20.0, "mean delay {:.1}s", d.mean());
}

#[test]
fn faas_requests_served_with_bounded_latency() {
    let trace = small_day();
    let mut cfg = DayConfig::fib_paper(4);
    cfg.load = Some(ConstantRateLoadGen {
        qps: 2.0,
        n_functions: 25,
    });
    let report = run_day(&trace, cfg);
    let c = &report.whisk_counters;
    assert!(c.submitted >= 28_000);
    let (succ, _, _) = report.accepted_outcome_shares();
    assert!(succ > 0.9, "success of accepted = {succ:.3}");
    let mut lat = report.latency_success_secs;
    assert!(!lat.is_empty());
    let med = lat.median();
    // The paper's ~0.8-1.2 s ballpark for warm sleep functions.
    assert!((0.5..=2.0).contains(&med), "median latency {med:.3}s");
    // Conservation: nothing unaccounted beyond in-flight tail.
    let answered = c.success + c.failed + c.timeout + c.rejected_503;
    assert!(c.submitted - answered < 50);
}

#[test]
fn uniform_priority_ablation_changes_job_mix() {
    let trace = small_day();
    let mut a = DayConfig::fib_paper(5);
    a.load = None;
    let mut b = a.clone();
    b.manager = ManagerKind::FibUniform(lengths::A1.to_vec());
    let ra = run_day(&trace, a);
    let rb = run_day(&trace, b);
    // Both run; the longest-first variant needs no more pilots than the
    // uniform one for its coverage (greedy packs long gaps with long
    // jobs).
    assert!(ra.cluster_counters.pilots_started > 0);
    assert!(rb.cluster_counters.pilots_started > 0);
    assert!(
        ra.cluster_counters.pilots_started <= rb.cluster_counters.pilots_started + 10,
        "longest-first {} vs uniform {}",
        ra.cluster_counters.pilots_started,
        rb.cluster_counters.pilots_started
    );
}

#[test]
fn reports_are_deterministic_per_seed() {
    let trace = small_day();
    let mk = |seed| {
        let mut cfg = DayConfig::fib_paper(seed);
        cfg.load = Some(ConstantRateLoadGen {
            qps: 1.0,
            n_functions: 5,
        });
        run_day(&trace, cfg)
    };
    let a = mk(9);
    let b = mk(9);
    let c = mk(10);
    assert_eq!(a.whisk_counters.success, b.whisk_counters.success);
    assert_eq!(
        a.cluster_counters.pilots_started,
        b.cluster_counters.pilots_started
    );
    // Different seed → different realization (warm-ups, jitters).
    assert!(
        a.whisk_counters.success != c.whisk_counters.success
            || a.cluster_counters.pilots_started != c.cluster_counters.pilots_started
    );
}

#[test]
fn poll_reconstruction_roundtrips_through_facade() {
    let trace = small_day();
    let mut cfg = DayConfig::fib_paper(11);
    cfg.load = None;
    let rep = run_day(&trace, cfg);
    let measured = AvailabilityTrace::from_poll_samples(&rep.samples, rep.n_nodes, true);
    // The measured availability roughly matches the generating trace.
    let gen_mins = trace.total_available().as_mins_f64();
    let meas_mins = measured.total_available().as_mins_f64();
    let ratio = meas_mins / gen_mins;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "measured/generated availability = {ratio:.3}"
    );
    let _ = SimTime::ZERO;
}
