//! Smoke tests of the `hpc_whisk` facade: every substrate is reachable
//! and does its basic job through the re-exported paths.

use hpc_whisk::gateway::{ActionId, ActionSpec, Gateway, GatewayConfig};
use hpc_whisk::metrics::{Cdf, StepSeries};
use hpc_whisk::mq::Broker;
use hpc_whisk::sebs::{bfs, mst, pagerank, Graph, Kernel, PlatformModel};
use hpc_whisk::simcore::{Engine, Outbox, SimDuration, SimRng, SimTime};
use hpc_whisk::workload::{AzureDurationModel, HpcWorkloadModel, PoissonLoadGen};

#[test]
fn simcore_engine_via_facade() {
    let mut engine: Engine<u8> = Engine::new();
    engine.schedule(SimTime::from_secs(1), 0);
    let mut n = 0;
    engine.run_until(
        SimTime::from_secs(10),
        &mut |_: SimTime, _: u8, out: &mut Outbox<u8>| {
            n += 1;
            if n < 3 {
                out.after(SimDuration::from_secs(1), 0);
            }
        },
    );
    assert_eq!(n, 3);
}

#[test]
fn metrics_via_facade() {
    let mut c = Cdf::from_values([1.0, 2.0, 3.0]);
    assert_eq!(c.median(), 2.0);
    let mut s = StepSeries::new(SimTime::ZERO, 0.0);
    s.set(SimTime::from_secs(5), 2.0);
    assert!((s.time_avg(SimTime::ZERO, SimTime::from_secs(10)) - 1.0).abs() < 1e-9);
}

#[test]
fn broker_via_facade() {
    let mut b: Broker<u32> = Broker::new();
    let t = b.create_topic("x");
    b.produce(t, SimTime::ZERO, 7);
    assert_eq!(b.fetch(t, 10)[0].payload, 7);
}

#[test]
fn sebs_kernels_via_facade() {
    let g = Graph::barabasi_albert(500, 2, 1);
    assert_eq!(bfs(&g, 0).1, 500);
    assert_eq!(mst(&g).1, 499);
    let (ranks, _) = pagerank(&g, 1e-8, 100);
    assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    // Platform model and kernel runner cooperate.
    let m = hpc_whisk::sebs::measure(Kernel::Bfs, &g, 0, 3);
    assert!(m.on_platform(&PlatformModel::aws_lambda_2048()) > m.median_secs() * 1.1);
}

#[test]
fn workload_models_via_facade() {
    let mut rng = SimRng::seed_from_u64(1);
    let j = HpcWorkloadModel::prometheus().sample_job(&mut rng);
    assert!(j.nodes >= 1);
    let d = AzureDurationModel::default().sample(&mut rng);
    assert!(d > SimDuration::ZERO);
}

#[test]
fn live_gateway_via_facade() {
    // Invoker lifecycle through the capacity-lease API: the floor lease
    // of a synthetic churn plan brings the plane up.
    use hpc_whisk::gateway::{CapacityController, ChurnCfg, ControllerConfig, LeasePlan};
    let gw = Gateway::new(GatewayConfig::default(), vec![ActionSpec::noop("f")]);
    let t0 = std::time::Instant::now();
    let mut ctl = CapacityController::new(
        &gw,
        LeasePlan::synthetic_churn(&ChurnCfg::default(), 1),
        ControllerConfig::default(),
        t0,
    );
    ctl.poll(t0);
    let id = gw.invoke(ActionId(0), 0).unwrap().id;
    let c = gw.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
    assert_eq!(c.id, id);
    let stats = ctl.finish();
    assert!(stats.grants >= 1);
    assert_eq!(gw.shutdown(), 0);
}

#[test]
fn load_harness_via_facade() {
    let gw = Gateway::new(GatewayConfig::default(), vec![ActionSpec::noop("f")]);
    gw.start_invoker();
    let arrivals = PoissonLoadGen::new(1_000.0, 1).arrivals(SimDuration::from_millis(50), 1);
    let r = hpc_whisk::gateway::run_load(
        &gw,
        &arrivals,
        &hpc_whisk::gateway::HarnessConfig {
            speedup: 0.0,
            ..Default::default()
        },
    );
    assert_eq!(r.lost(), 0);
    assert!(r.completed > 0);
}
