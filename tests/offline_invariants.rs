//! Integration: structural invariants of Table I that must hold on any
//! generated trace — the properties the paper's §IV-B argument rests on.

use hpc_whisk::core::lengths;
use hpc_whisk::core::offline::{simulate, OfflineConfig};
use hpc_whisk::simcore::SimDuration;
use hpc_whisk::workload::IdleModel;

fn day_trace(seed: u64) -> hpc_whisk::cluster::AvailabilityTrace {
    let mut m = IdleModel::prometheus_week();
    m.n_nodes = 400;
    m.target_avg_idle = 4.0;
    m.generate(SimDuration::from_hours(12), seed)
}

#[test]
fn not_used_share_is_identical_across_all_sets() {
    // Every set contains 2-minute jobs, so greedy fill covers exactly
    // the even part of every gap: the unusable remainder (sub-2-minute
    // slivers and odd leftovers) is set-independent.
    let trace = day_trace(3);
    let mut unused: Vec<f64> = Vec::new();
    for (_, set) in lengths::all_sets() {
        unused.push(simulate(&trace, &OfflineConfig::table1(set)).unused_share);
    }
    for u in &unused {
        assert!(
            (u - unused[0]).abs() < 1e-9,
            "unused shares differ: {unused:?}"
        );
    }
}

#[test]
fn job_count_ordering_matches_the_paper() {
    // Paper Table I: C2 < C1 < A1 < A3 < A2 < B in number of jobs.
    let trace = day_trace(5);
    let count = |set: Vec<u64>| simulate(&trace, &OfflineConfig::table1(set)).n_jobs;
    let c2 = count(lengths::c2());
    let c1 = count(lengths::c1());
    let a1 = count(lengths::A1.to_vec());
    let a3 = count(lengths::A3.to_vec());
    let a2 = count(lengths::A2.to_vec());
    let b = count(lengths::B.to_vec());
    assert!(c2 <= c1, "C2 {c2} vs C1 {c1}");
    assert!(c1 <= a1 + a1 / 10, "C1 {c1} vs A1 {a1}");
    assert!(a1 <= a3, "A1 {a1} vs A3 {a3}");
    assert!(a3 <= a2, "A3 {a3} vs A2 {a2}");
    assert!(a2 <= b, "A2 {a2} vs B {b}");
}

#[test]
fn more_jobs_means_more_warmup_and_less_ready() {
    let trace = day_trace(7);
    let b = simulate(&trace, &OfflineConfig::table1(lengths::B.to_vec()));
    let c2 = simulate(&trace, &OfflineConfig::table1(lengths::c2()));
    assert!(b.n_jobs > c2.n_jobs);
    assert!(b.warmup_share > c2.warmup_share);
    assert!(b.ready_share < c2.ready_share);
    // Shares always partition the surface.
    for r in [&b, &c2] {
        let sum = r.warmup_share + r.ready_share + r.unused_share;
        assert!((sum - 1.0).abs() < 1e-9);
    }
}

#[test]
fn longer_warmup_strictly_hurts() {
    let trace = day_trace(9);
    let mut prev_ready = f64::INFINITY;
    for warmup_secs in [5u64, 20, 60, 110] {
        let cfg = OfflineConfig {
            lengths_mins: lengths::A1.to_vec(),
            warmup: SimDuration::from_secs(warmup_secs),
        };
        let r = simulate(&trace, &cfg);
        assert!(
            r.ready_share < prev_ready,
            "ready share must fall as warm-up grows"
        );
        prev_ready = r.ready_share;
    }
}
