//! Offline subset of `rayon` (see `vendor/README.md`).
//!
//! Covers the surface this workspace uses — `into_par_iter()` on vectors
//! and integer ranges with `.map(..).collect()` / `.for_each(..)`, and
//! `par_iter_mut().enumerate().for_each(..)` on slices — with genuine
//! parallelism: work is split into contiguous chunks executed on scoped
//! OS threads (one per available core), and results preserve input
//! order. There is no work stealing; the intended workloads are a
//! handful of coarse, similar-cost items (replications, seeds, days).

use std::ops::Range;

/// Everything a `use rayon::prelude::*` consumer expects.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

fn n_threads() -> usize {
    // Same knob as real rayon's default pool: RAYON_NUM_THREADS caps the
    // worker count (scaling benches pin 1/2/4 threads through it). Read
    // per call — the shim has no persistent pool to rebuild.
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over owned items.
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 || n_threads() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(n_threads().min(n));
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    })
}

/// Parallel indexed for-each over a mutable slice.
fn par_for_each_mut<T, F>(slice: &mut [T], f: &F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = slice.len();
    if n == 0 {
        return;
    }
    if n == 1 || n_threads() <= 1 {
        for (i, item) in slice.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(n_threads().min(n));
    std::thread::scope(|s| {
        for (ci, ch) in slice.chunks_mut(chunk).enumerate() {
            let base = ci * chunk;
            s.spawn(move || {
                for (i, item) in ch.iter_mut().enumerate() {
                    f(base + i, item);
                }
            });
        }
    });
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Begin a parallel pipeline.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par!(u32, u64, usize, i32, i64);

/// `par_iter()` over a shared slice (clones are avoided: items are
/// references).
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send;
    /// Begin a parallel pipeline over `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut()` over a mutable slice.
pub trait IntoParallelRefMutIterator<'a> {
    /// Mutable item type.
    type Item;
    /// Begin a mutable parallel pipeline over `&mut self`.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map; chain with `.collect()`.
    pub fn map<R, F>(self, f: F) -> ParMap<T, R, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
            _r: std::marker::PhantomData,
        }
    }

    /// Parallel for-each.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map_vec(self.items, &|t| f(t));
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A pending parallel map.
pub struct ParMap<T, R, F> {
    items: Vec<T>,
    f: F,
    _r: std::marker::PhantomData<fn() -> R>,
}

impl<T, R, F> ParMap<T, R, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Execute the map in parallel and collect in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }

    /// Parallel reduction (identity + associative combine).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        par_map_vec(self.items, &self.f)
            .into_iter()
            .fold(identity(), op)
    }
}

/// A parallel iterator over a mutable slice.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { slice: self.slice }
    }

    /// Parallel for-each over `&mut` items.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        par_for_each_mut(self.slice, &|_, item| f(item));
    }
}

/// An enumerated parallel iterator over a mutable slice.
pub struct ParIterMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMutEnumerate<'a, T> {
    /// Parallel for-each over `(index, &mut item)` pairs.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        par_for_each_mut(self.slice, &|i, item| f((i, item)));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_into_par_iter() {
        let items: Vec<String> = (0..50).map(|i| format!("x{i}")).collect();
        let lens: Vec<usize> = items.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(
            lens.iter().sum::<usize>(),
            (0..50).map(|i| format!("x{i}").len()).sum()
        );
    }

    #[test]
    fn par_iter_mut_enumerate() {
        let mut v = vec![0usize; 257];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| *slot = i * i);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    /// Serializes the tests that read/write `RAYON_NUM_THREADS` — the
    /// process environment is shared across the test harness's threads.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn actually_uses_threads() {
        let _env = ENV_LOCK.lock().unwrap();
        // Not a strict guarantee on 1-core machines, but on the CI boxes
        // this must see >1 distinct thread id for 64 chunky items.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            < 2
        {
            return;
        }
        let ids: Vec<std::thread::ThreadId> = (0..64usize)
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected parallel execution");
    }

    #[test]
    fn env_override_pins_thread_count() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let ids: Vec<std::thread::ThreadId> = (0..64usize)
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert_eq!(distinct.len(), 1, "1-thread override must run inline");
    }
}
