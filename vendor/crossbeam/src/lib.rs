//! Offline subset of `crossbeam` (see `vendor/README.md`): the
//! `channel` module with a genuine multi-producer **multi-consumer**
//! unbounded channel (std's mpsc receiver is not cloneable, which the
//! fast-lane protocol needs), built on `Mutex<VecDeque>` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the rejected message.
    pub struct SendError<T>(pub T);

    impl<T> SendError<T> {
        /// Recover the message that could not be sent.
        pub fn into_inner(self) -> T {
            self.0
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails (returning it) when no receiver
        /// remains.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(msg);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.inner.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .inner
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.inner.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Blocking receive; fails only on disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            loop {
                match self.recv_timeout(Duration::from_millis(200)) {
                    Ok(v) => return Ok(v),
                    Err(RecvTimeoutError::Disconnected) => return Err(RecvError),
                    Err(RecvTimeoutError::Timeout) => {}
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::collections::HashSet;

        #[test]
        fn fifo_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.try_recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn mpmc_no_loss_no_duplication() {
            let (tx, rx) = unbounded::<u64>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv_timeout(Duration::from_secs(2)) {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..1_000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all = HashSet::new();
            for c in consumers {
                for v in c.join().unwrap() {
                    assert!(all.insert(v), "duplicate {v}");
                }
            }
            assert_eq!(all.len(), 1_000);
        }

        #[test]
        fn send_fails_after_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            let err = tx.send(7).unwrap_err();
            assert_eq!(err.into_inner(), 7);
        }

        #[test]
        fn disconnect_surfaces_after_drain() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
