//! Offline, API-compatible subset of `rand` 0.9 (see `vendor/README.md`).
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64) and
//! the `Rng`/`RngCore`/`SeedableRng` trait surface the workspace uses:
//! `random::<f64>()`, `random_range(lo..hi)` over the integer types, and
//! raw `next_u64` draws. The stream is deterministic per seed but not
//! bit-identical to upstream `rand` — every consumer in this workspace
//! seeds explicitly and only relies on *reproducibility*, not on a
//! specific stream.

use std::ops::Range;

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit draw (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, integers over the full range).
    fn random<T: StandardDist>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution for [`Rng::random`].
pub trait StandardDist {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardDist for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDist for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardDist for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); the tiny
                // residual bias is irrelevant for simulation seeding.
                let hi = ((rng.next_u64() as u128 * width as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * width as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator — xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let diff = (0..64).filter(|_| a.next_u64() != c.next_u64()).count();
        assert!(diff > 60);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.random_range(5u64..17);
            assert!((5..17).contains(&v));
            let i = r.random_range(0usize..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut r = SmallRng::seed_from_u64(5);
        let n = 50_000;
        let mean = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
