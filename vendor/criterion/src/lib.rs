//! Offline subset of `criterion` (see `vendor/README.md`).
//!
//! Implements the macro + builder surface the workspace benches use and
//! genuinely measures: per sample, the routine runs enough iterations to
//! cover a minimum window, and the reported figure is the **median**
//! per-iteration time over `sample_size` samples (median is robust to
//! scheduler noise, like upstream's typical value). Results print as
//!
//! ```text
//! group/name              time: [12.345 µs]  (N samples)
//! ```
//!
//! and also append machine-readable lines to the file named by
//! `CRITERION_SHIM_JSONL` (used by the bench-trajectory tooling).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion 0.5 compatibility).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim always runs
/// setup-per-batch with moderate batch sizes, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: large batches are fine.
    SmallInput,
    /// Large input: keep batches small so memory stays bounded.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level harness configuration/driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measure_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            warm_up: Duration::from_millis(150),
            measure_time: Duration::from_millis(900),
            filter: None,
        }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(5);
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measure_time = t;
        self
    }

    /// Pick up a name filter from the command line (anything that is not
    /// a flag is treated as a substring filter, like upstream).
    pub fn configure_from_args(mut self) -> Self {
        let filter: Vec<String> = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        if let Some(f) = filter.into_iter().next() {
            self.filter = Some(f);
        }
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(name.to_string(), sample_size, f);
        self
    }

    /// No-op (upstream prints a summary here).
    pub fn final_summary(&self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: String, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            sample_size,
            warm_up: self.warm_up,
            measure_time: self.measure_time,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&id);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(5));
        self
    }

    /// Override the measurement budget (accepted for compatibility).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(id, n, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; collects timing samples.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measure_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up while estimating the per-iteration cost.
        let wu_start = Instant::now();
        let mut wu_iters: u64 = 0;
        while wu_start.elapsed() < self.warm_up || wu_iters == 0 {
            std_black_box(routine());
            wu_iters += 1;
        }
        let est_ns = (wu_start.elapsed().as_nanos() as f64 / wu_iters as f64).max(1.0);
        let budget_ns = self.measure_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns) as u64).clamp(1, 1_000_000);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Measure a routine with per-batch setup whose cost is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up / estimate with a couple of runs.
        let mut est_ns = f64::MAX;
        for _ in 0..3 {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            est_ns = est_ns.min((t.elapsed().as_nanos() as f64).max(1.0));
        }
        let budget_ns = self.measure_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns) as u64).clamp(1, 10_000) as usize;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std_black_box(routine(input));
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Measure a routine that takes its per-batch input by `&mut`, so
    /// the input's **drop cost stays outside the timed region** (the
    /// whole point of upstream's `iter_batched_ref`): inputs are built
    /// before the clock starts and the batch is dropped after it stops.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        // Warm-up / estimate with a couple of runs.
        let mut est_ns = f64::MAX;
        for _ in 0..3 {
            let mut input = setup();
            let t = Instant::now();
            std_black_box(routine(&mut input));
            est_ns = est_ns.min((t.elapsed().as_nanos() as f64).max(1.0));
            drop(input);
        }
        let budget_ns = self.measure_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns) as u64).clamp(1, 10_000) as usize;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let mut inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs.iter_mut() {
                std_black_box(routine(input));
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            drop(inputs); // fixture teardown is not measured
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} no samples collected");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        let min = s[0];
        let max = s[s.len() - 1];
        println!(
            "{id:<44} time: [{}]  (min {}, max {}, {} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            s.len()
        );
        if let Ok(path) = std::env::var("CRITERION_SHIM_JSONL") {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    f,
                    "{{\"id\":\"{id}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1}}}"
                );
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a bench group function. Both upstream forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    }

    #[test]
    fn iter_produces_samples() {
        let mut c = Criterion::default().sample_size(5);
        c = c.measurement_time(Duration::from_millis(20));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| work(100));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_ref_excludes_drop_and_mutates_in_place() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Fixture(u64);
        impl Drop for Fixture {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let mut c = Criterion::default().sample_size(5);
        c = c.measurement_time(Duration::from_millis(20));
        let mut setups = 0usize;
        c.bench_function("batched_ref", |b| {
            b.iter_batched_ref(
                || {
                    setups += 1;
                    Fixture(7)
                },
                |f| {
                    f.0 = f.0.wrapping_mul(3); // &mut access
                    work(50)
                },
                BatchSize::LargeInput,
            )
        });
        assert!(setups > 0);
        // Every fixture built was eventually dropped (outside timing).
        assert_eq!(DROPS.load(Ordering::SeqCst), setups);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion::default().sample_size(5);
        c = c.measurement_time(Duration::from_millis(20));
        c.benchmark_group("g").bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| work(v.len() as u64),
                BatchSize::SmallInput,
            )
        });
    }
}
