//! Offline subset of `parking_lot` (see `vendor/README.md`): `RwLock`
//! and `Mutex` with the non-poisoning guard-returning API, implemented
//! over the std primitives (a poisoned lock is simply recovered, which
//! matches parking_lot's no-poisoning semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose guards are returned directly (no
/// `Result`), matching `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex whose guard is returned directly, matching
/// `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
