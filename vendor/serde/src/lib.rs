//! Offline marker-trait subset of `serde` (see `vendor/README.md`).
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-looking annotation; no code path serializes yet. The traits
//! are empty markers (blanket-implemented so generic bounds hold) and
//! the derives are no-ops.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<T> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
