//! No-op `Serialize`/`Deserialize` derives for the offline `serde` shim.
//!
//! The workspace only uses serde derives as forward-looking annotations
//! on ID/time newtypes — nothing serializes yet (reports are rendered by
//! hand). The derives therefore expand to nothing; the marker traits in
//! the `serde` shim are blanket-implemented.

use proc_macro::TokenStream;

/// Expands to nothing (marker-trait shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (marker-trait shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
