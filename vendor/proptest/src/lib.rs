//! Offline subset of `proptest` (see `vendor/README.md`).
//!
//! Implements the surface this workspace uses: the [`proptest!`] macro
//! (with optional `#![proptest_config(..)]`), range / tuple / `Just` /
//! `any::<T>()` strategies, `prop_map`, `prop_oneof!`, boxed strategies
//! and `collection::vec`. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce;
//! there is **no shrinking** — the failing inputs are printed instead.

use std::ops::Range;
use std::rc::Rc;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 96 keeps `cargo test` snappy while
        // still exploring meaningfully. Override per-block with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`.
        ProptestConfig { cases: 96 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator used by the runner (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// Seed deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Object-safe: `generate` takes the concrete RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Strategy returning a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (`Strategy::boxed`, `prop_oneof!`).
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among alternatives (`prop_oneof!`).
pub struct Union<T> {
    /// The alternatives.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs options");
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident : $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types usable with [`any`].
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Strategy over the whole domain of `T`.
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property (no shrinking: panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

/// Define property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in proptest::collection::vec(0u8..4, 0..16)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..1_000 {
            let x = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let v = collection::vec((0u8..4, 1u8..9), 0..13).generate(&mut rng);
            assert!(v.len() < 13);
            for (a, b) in v {
                assert!(a < 4 && (1..9).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        #[derive(Debug, PartialEq)]
        enum E {
            A(u8),
            B,
        }
        let strat = prop_oneof![(0u8..4).prop_map(E::A), Just(()).prop_map(|_| E::B)];
        let mut rng = crate::TestRng::from_seed(9);
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                E::A(x) => {
                    assert!(x < 4);
                    seen_a = true;
                }
                E::B => seen_b = true,
            }
        }
        assert!(seen_a && seen_b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro itself: patterns, multiple args, trailing comma.
        #[test]
        fn macro_smoke(mut x in 0u64..100, (a, b) in (0u32..10, 0u32..10),) {
            x += 1;
            prop_assert!(x <= 100);
            prop_assert!(a < 10 && b < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
